"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

Nodes live in a shared store; structural sharing is enforced by a *unique
table* mapping ``(level, low, high)`` triples to node ids, and the standard
reduction rule (``low == high`` collapses to the child) keeps diagrams
canonical.  Canonicity is what makes the representation attractive for
points-to analysis: set equality is a pointer comparison, and memoized
``apply`` gives set union/intersection in time proportional to the product
of the operand DAG sizes rather than the set cardinalities.

Terminals are node ids ``0`` (FALSE) and ``1`` (TRUE).  Variable *levels*
are integers; smaller levels sit closer to the root, so the level assignment
is the variable order.  The manager never garbage-collects: peak node count
is exactly the metric the paper's memory study needs (the BuDDy pool size),
and the workloads here are bounded.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

FALSE = 0
TRUE = 1

_OP_AND = "and"
_OP_OR = "or"
_OP_DIFF = "diff"
_OP_XOR = "xor"


class BDDManager:
    """Shared store for a family of ROBDDs over one variable order."""

    def __init__(self, var_count: int = 0) -> None:
        # Parallel arrays beat tuples-in-a-dict for speed and memory.
        self._level: List[int] = [2**31, 2**31]  # terminals sort below all vars
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}
        self._var_count = var_count
        self._var_nodes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    @property
    def var_count(self) -> int:
        return self._var_count

    def add_vars(self, count: int) -> int:
        """Append ``count`` fresh variables; return the first new level."""
        first = self._var_count
        self._var_count += count
        return first

    def mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor applying the reduction rule."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The BDD of the single variable ``level``."""
        if not 0 <= level < self._var_count:
            raise ValueError(f"variable level {level} out of range")
        node = self._var_nodes.get(level)
        if node is None:
            node = self.mk(level, FALSE, TRUE)
            self._var_nodes[level] = node
        return node

    def nvar(self, level: int) -> int:
        """The BDD of the negated variable ``level``."""
        if not 0 <= level < self._var_count:
            raise ValueError(f"variable level {level} out of range")
        return self.mk(level, TRUE, FALSE)

    def level_of(self, node: int) -> int:
        return self._level[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    @property
    def node_count(self) -> int:
        """Total nodes ever allocated (terminals included) — the pool size."""
        return len(self._level)

    def dag_size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node`` (terminals included)."""
        seen = {FALSE, TRUE}
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return len(seen)

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        return self._apply(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply(_OP_OR, f, g)

    def apply_diff(self, f: int, g: int) -> int:
        """``f AND NOT g`` — set difference."""
        return self._apply(_OP_DIFF, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply(_OP_XOR, f, g)

    def negate(self, f: int) -> int:
        return self._apply(_OP_XOR, f, TRUE)

    def _apply(self, op: str, f: int, g: int) -> int:
        # Terminal cases per operator.
        if op == _OP_AND:
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE or f == g:
                return f
            if f > g:  # AND is commutative: canonicalize cache key
                f, g = g, f
        elif op == _OP_OR:
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE or f == g:
                return f
            if f > g:
                f, g = g, f
        elif op == _OP_DIFF:
            if f == FALSE or g == TRUE or f == g:
                return FALSE
            if g == FALSE:
                return f
        else:  # XOR
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f > g:
                f, g = g, f

        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        level_f = self._level[f]
        level_g = self._level[g]
        level = min(level_f, level_g)
        f_low, f_high = (self._low[f], self._high[f]) if level_f == level else (f, f)
        g_low, g_high = (self._low[g], self._high[g]) if level_g == level else (g, g)
        result = self.mk(
            level,
            self._apply(op, f_low, g_low),
            self._apply(op, f_high, g_high),
        )
        self._apply_cache[key] = result
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = ("ite", f, g, h)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        result = self.mk(
            level,
            self.ite(f_low, g_low, h_low),
            self.ite(f_high, g_high, h_high),
        )
        self._apply_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Quantification, relational product, renaming
    # ------------------------------------------------------------------

    def exist(self, f: int, levels: Sequence[int]) -> int:
        """Existentially quantify the given variable levels out of ``f``."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._exist(f, level_set)

    def _exist(self, f: int, levels: frozenset) -> int:
        if f <= TRUE:
            return f
        level = self._level[f]
        if all(level > lv for lv in levels):
            # f is below every quantified variable: nothing left to remove.
            return f
        key = ("exist", f, levels)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        low = self._exist(self._low[f], levels)
        high = self._exist(self._high[f], levels)
        if level in levels:
            result = self._apply(_OP_OR, low, high)
        else:
            result = self.mk(level, low, high)
        self._apply_cache[key] = result
        return result

    def relprod(self, f: int, g: int, levels: Sequence[int]) -> int:
        """``EXISTS levels . f AND g`` without building the conjunction.

        This is the workhorse of the BLQ solver: one relational product per
        propagation or constraint-resolution step.
        """
        level_set = frozenset(levels)
        return self._relprod(f, g, level_set)

    def _relprod(self, f: int, g: int, levels: frozenset) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        key = ("relprod", f, g, levels)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        if all(level > lv for lv in levels):
            # No quantified variables remain in either operand.
            result = self._apply(_OP_AND, f, g)
        else:
            f_low, f_high = self._cofactors(f, level)
            g_low, g_high = self._cofactors(g, level)
            low = self._relprod(f_low, g_low, levels)
            high = self._relprod(f_high, g_high, levels)
            if level in levels:
                result = self._apply(_OP_OR, low, high)
            else:
                result = self.mk(level, low, high)
        self._apply_cache[key] = result
        return result

    def replace(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables per ``mapping`` (old level -> new level).

        The mapping must be order-preserving (monotone on levels) so the
        result can be rebuilt top-down in a single pass; this holds for all
        the interleaved-domain renames the solvers perform, and is checked.
        """
        if not mapping:
            return f
        items = sorted(mapping.items())
        for (old_a, new_a), (old_b, new_b) in zip(items, items[1:]):
            if not (old_a < old_b and new_a < new_b):
                raise ValueError("replace mapping must be order-preserving")
        frozen = tuple(items)
        return self._replace(f, dict(items), frozen)

    def _replace(self, f: int, mapping: Dict[int, int], frozen: Tuple) -> int:
        if f <= TRUE:
            return f
        key = ("replace", f, frozen)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        new_level = mapping.get(level, level)
        low = self._replace(self._low[f], mapping, frozen)
        high = self._replace(self._high[f], mapping, frozen)
        result = self._mk_ordered(new_level, low, high)
        self._apply_cache[key] = result
        return result

    def _mk_ordered(self, level: int, low: int, high: int) -> int:
        """``mk`` that tolerates a renamed level sinking below its children.

        Order-preserving renames keep the relative order of *renamed*
        variables, but a renamed variable can move past an unrenamed one;
        when that happens the node is pushed down recursively via ITE.
        """
        if level < self._level[low] and level < self._level[high]:
            return self.mk(level, low, high)
        return self.ite(self.var(level), high, low)

    # ------------------------------------------------------------------
    # Evaluation and enumeration
    # ------------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        node = f
        while node > TRUE:
            level = self._level[node]
            try:
                value = assignment[level]
            except KeyError:
                raise ValueError(f"assignment missing variable {level}") from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def support(self, f: int) -> List[int]:
        """Sorted list of variable levels ``f`` depends on."""
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(levels)

    def satcount(self, f: int, var_levels: Sequence[int]) -> int:
        """Number of satisfying assignments over exactly ``var_levels``.

        ``var_levels`` must be a superset of the support of ``f``.
        """
        order = sorted(var_levels)
        position = {level: i for i, level in enumerate(order)}
        total = len(order)
        cache: Dict[int, int] = {}

        def count(node: int) -> Tuple[int, int]:
            """Return (count below this node, position of node's level)."""
            if node == FALSE:
                return 0, total
            if node == TRUE:
                return 1, total
            if node in cache:
                return cache[node], position[self._level[node]]
            level_pos = position[self._level[node]]
            low_count, low_pos = count(self._low[node])
            high_count, high_pos = count(self._high[node])
            result = low_count * (1 << (low_pos - level_pos - 1)) + high_count * (
                1 << (high_pos - level_pos - 1)
            )
            cache[node] = result
            return result, level_pos

        top_count, top_pos = count(f)
        return top_count * (1 << top_pos)

    def allsat(self, f: int, var_levels: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """Enumerate satisfying assignments of ``f`` over ``var_levels``.

        Free variables (in ``var_levels`` but not in the support along a
        path) are expanded to both polarities, so each yielded dict is a
        *total* assignment — this mirrors BuDDy's ``bdd_allsat``, which the
        paper identifies as the dominant cost of BDD points-to sets.
        """
        order = sorted(var_levels)
        level_set = set(order)

        def walk(node: int, index: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if index == len(order):
                yield dict(partial)
                return
            level = order[index]
            node_level = self._level[node] if node > TRUE else 2**31
            if node_level not in level_set and node > TRUE:
                raise ValueError(f"support variable {node_level} not enumerated")
            if node_level == level:
                for value, child in ((False, self._low[node]), (True, self._high[node])):
                    partial[level] = value
                    yield from walk(child, index + 1, partial)
                del partial[level]
            else:
                # node is constant in this variable: branch both ways.
                for value in (False, True):
                    partial[level] = value
                    yield from walk(node, index + 1, partial)
                del partial[level]

        yield from walk(f, 0, {})
