"""A from-scratch Binary Decision Diagram package.

The paper's BLQ baseline (Berndl et al., PLDI 2003) expresses the whole
pointer analysis as BDD relational algebra, and Section 5.4 re-implements
every solver's points-to sets on top of per-variable BDDs.  The original
work used the BuDDy C library; this package provides the same capabilities
in pure Python:

- :class:`~repro.bdd.manager.BDDManager` — shared node store with a unique
  table and memoized apply/ITE/quantification, plus ``relprod`` (the
  conjunction-and-existential-quantification composite that drives
  relational propagation) and order-preserving variable ``replace``.
- :class:`~repro.bdd.domain.Domain` — finite-domain (FDD-style) encoding of
  integers onto blocks of BDD variables, with interleaved or sequential bit
  allocation (the ablation of Section 5's variable-ordering sensitivity).
- :mod:`~repro.bdd.ops` — set-level helpers: building a BDD from an iterable
  of tuples, ``allsat`` enumeration (the ``bdd_allsat`` the paper identifies
  as the dominant cost of BDD points-to sets), and satisfying-assignment
  counting.
"""

from repro.bdd.domain import Domain, DomainAllocator
from repro.bdd.manager import BDDManager

__all__ = ["BDDManager", "Domain", "DomainAllocator"]
