"""SARIF 2.1.0 emission, validation and round-trip reading.

SARIF (Static Analysis Results Interchange Format, OASIS) is the
interchange format code-review tooling ingests.  This module emits the
subset the checkers need — one ``run`` with a rule table generated from
the registry and one ``result`` per diagnostic — plus a structural
validator used by tests and CI in place of a JSON-Schema engine (no
external dependencies), and a reader that reconstructs a
:class:`~repro.checkers.diagnostics.CheckReport` exactly, so "all
diagnostics round-trip through SARIF" is a testable property.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.checkers.diagnostics import (
    CheckReport,
    Diagnostic,
    RelatedLocation,
    Severity,
)
from repro.checkers.registry import registered_checkers

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-check"
TOOL_URI = "https://dl.acm.org/doi/10.1145/1250734.1250767"

#: The SARIF result levels the checkers use (``none`` exists in the
#: standard but has no Severity counterpart here).
_LEVELS = {s.label for s in Severity}


def _physical_location(file: str, line: int) -> Dict[str, Any]:
    """A SARIF location object; regions are 1-based so line 0 has none."""
    physical: Dict[str, Any] = {"artifactLocation": {"uri": file}}
    if line >= 1:
        physical["region"] = {"startLine": line}
    return {"physicalLocation": physical}


def to_sarif(report: CheckReport, tool_version: str = "0.1.0") -> Dict[str, Any]:
    """Serialize a report as one SARIF run."""
    rules = [
        {
            "id": info.name,
            "shortDescription": {"text": info.description},
            "defaultConfiguration": {"level": info.severity.label},
        }
        for info in registered_checkers()
    ]
    results: List[Dict[str, Any]] = []
    for diag in report.diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diag.rule,
            "level": diag.severity.label,
            "message": {"text": diag.message},
            # The properties bag carries what physicalLocation cannot
            # (line 0 = unknown; the originating AST construct), making
            # the SARIF round-trip lossless.
            "properties": {
                "construct": diag.construct,
                "line": diag.line,
            },
        }
        result["locations"] = [_physical_location(diag.file, diag.line)]
        if diag.related:
            result["relatedLocations"] = [
                dict(
                    _physical_location(rel.file, rel.line),
                    message={"text": rel.message},
                )
                for rel in diag.related
            ]
            # Mirror in the properties bag so line-0 secondary sites
            # (not expressible as a SARIF region) round-trip exactly.
            result["properties"]["related"] = [
                {"message": rel.message, "line": rel.line, "file": rel.file}
                for rel in diag.related
            ]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


class SarifValidationError(ValueError):
    """Raised when a document violates the SARIF 2.1.0 structure."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SarifValidationError(message)


def validate_sarif(doc: Any) -> None:
    """Structural SARIF 2.1.0 validation (the subset this tool emits).

    Mirrors the constraints of the official JSON schema for the fields
    in play: exact version, runs/tool/driver shape, result levels drawn
    from the standard's enumeration, messages with text, and 1-based
    integer region lines.  Raises :class:`SarifValidationError`.
    """
    _require(isinstance(doc, dict), "document must be an object")
    _require(doc.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = doc.get("runs")
    _require(isinstance(runs, list) and runs, "runs must be a non-empty array")
    for run in runs:
        _require(isinstance(run, dict), "run must be an object")
        driver = run.get("tool", {}).get("driver")
        _require(isinstance(driver, dict), "run.tool.driver must be an object")
        _require(
            isinstance(driver.get("name"), str) and driver["name"],
            "tool.driver.name must be a non-empty string",
        )
        for rule in driver.get("rules", []):
            _require(
                isinstance(rule, dict) and isinstance(rule.get("id"), str),
                "every rule needs a string id",
            )
        results = run.get("results", [])
        _require(isinstance(results, list), "run.results must be an array")
        for result in results:
            _require(isinstance(result, dict), "result must be an object")
            _require(
                isinstance(result.get("ruleId"), str) and result["ruleId"],
                "result.ruleId must be a non-empty string",
            )
            level = result.get("level", "warning")
            _require(
                level in _LEVELS | {"none"},
                f"result.level {level!r} not a SARIF level",
            )
            message = result.get("message")
            _require(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                "result.message.text must be a string",
            )
            for location in result.get("locations", []):
                _validate_location(location)
            for location in result.get("relatedLocations", []):
                _validate_location(location)
                rel_message = location.get("message")
                _require(
                    isinstance(rel_message, dict)
                    and isinstance(rel_message.get("text"), str),
                    "relatedLocation.message.text must be a string",
                )


def _validate_location(location: Any) -> None:
    _require(isinstance(location, dict), "location must be an object")
    physical = location.get("physicalLocation", {})
    artifact = physical.get("artifactLocation", {})
    _require(
        isinstance(artifact.get("uri"), str),
        "artifactLocation.uri must be a string",
    )
    region = physical.get("region")
    if region is not None:
        start = region.get("startLine")
        _require(
            isinstance(start, int) and not isinstance(start, bool)
            and start >= 1,
            "region.startLine must be an integer >= 1",
        )


def from_sarif(doc: Dict[str, Any]) -> CheckReport:
    """Reconstruct a report from a SARIF document (inverse of
    :func:`to_sarif`); validates first."""
    validate_sarif(doc)
    report = CheckReport()
    for run in doc["runs"]:
        for result in run.get("results", []):
            properties = result.get("properties", {})
            line = properties.get("line")
            if not isinstance(line, int):
                region = (
                    result.get("locations", [{}])[0]
                    .get("physicalLocation", {})
                    .get("region", {})
                )
                line = region.get("startLine", 0)
            uri = (
                result.get("locations", [{}])[0]
                .get("physicalLocation", {})
                .get("artifactLocation", {})
                .get("uri", "<input>")
            )
            report.diagnostics.append(
                Diagnostic(
                    rule=result["ruleId"],
                    severity=Severity.parse(result.get("level", "warning")),
                    message=result["message"]["text"],
                    line=line,
                    construct=properties.get("construct", ""),
                    file=uri,
                    related=_related_from(result, properties),
                )
            )
    return report


def _related_from(
    result: Dict[str, Any], properties: Dict[str, Any]
) -> tuple:
    """Secondary sites: the properties mirror wins (it keeps line 0);
    plain ``relatedLocations`` are the fallback for foreign documents."""
    mirror = properties.get("related")
    if isinstance(mirror, list):
        return tuple(
            RelatedLocation(
                message=entry.get("message", ""),
                line=entry.get("line", 0),
                file=entry.get("file", "<input>"),
            )
            for entry in mirror
            if isinstance(entry, dict)
        )
    related = []
    for location in result.get("relatedLocations", []):
        physical = location.get("physicalLocation", {})
        related.append(
            RelatedLocation(
                message=location.get("message", {}).get("text", ""),
                line=physical.get("region", {}).get("startLine", 0),
                file=physical.get("artifactLocation", {}).get("uri", "<input>"),
            )
        )
    return tuple(related)
