"""Shared query surface the checkers run against.

A :class:`CheckContext` bundles the constraint system, the solved
points-to relation and (when the input came through the C front-end) the
:class:`~repro.frontend.generator.GeneratedProgram` naming metadata.  It
pre-indexes what every checker needs — deref sites with their provenance,
location classification by naming convention, address-taken lines — so
individual checkers stay small and none re-walks the constraint list.

The ``program`` field is optional on purpose: ``repro check`` also
accepts ``.cons`` files (including minimized repros out of ``repro
reduce``), where classification falls back to the front-end naming
conventions baked into the variable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import (
    Constraint,
    ConstraintKind,
    ConstraintSystem,
    Provenance,
)
from repro.frontend.generator import GeneratedProgram


def owner_of(name: str) -> Optional[str]:
    """Owning function of a qualified name (None for globals/heap).

    Mirrors the front-end naming conventions: locals are ``"fn::var"``,
    generator temporaries ``"fn$tag<N>@<line>"``.
    """
    if "::" in name:
        return name.split("::", 1)[0]
    if "$" in name:
        return name.split("$", 1)[0]
    return None


def site_line_of(name: str) -> int:
    """Source line encoded in a ``heap@<line>#<k>``/``str@<line>#<k>`` name."""
    if "@" not in name:
        return 0
    tail = name.rsplit("@", 1)[1]
    digits = tail.split("#", 1)[0]
    return int(digits) if digits.isdigit() else 0


@dataclass(frozen=True)
class DerefSite:
    """One pointer dereference: a complex constraint plus its origin."""

    constraint: Constraint
    #: The dereferenced pointer variable (LOAD src / STORE dst).
    pointer: int
    offset: int

    @property
    def prov(self) -> Optional[Provenance]:
        return self.constraint.prov

    @property
    def line(self) -> int:
        return self.constraint.prov.line if self.constraint.prov else 0


class CheckContext:
    """Everything a checker may query, pre-indexed once per run."""

    def __init__(
        self,
        system: ConstraintSystem,
        solution: PointsToSolution,
        program: Optional[GeneratedProgram] = None,
        path: str = "<input>",
        expansion=None,
        expanded_solution: Optional[PointsToSolution] = None,
    ) -> None:
        self.system = system
        self.solution = solution
        self.program = program
        self.path = path
        self.functions = system.functions
        #: k-CFA context expansion the solver ran under, when any
        #: (a :class:`~repro.analysis.context.ContextExpansion`), plus
        #: the pre-projection clone-space solution that goes with it.
        self.expansion = expansion
        self.expanded_solution = expanded_solution

        if program is not None:
            self.null_node: Optional[int] = program.null_node
            self.heap_nodes: List[int] = list(program.heap_nodes)
        else:
            # .cons inputs: recover the special locations from the
            # front-end naming conventions, if present.
            self.null_node = None
            self.heap_nodes = []
            for node, name in enumerate(system.names):
                if name == "<null>":
                    self.null_node = node
                elif name.startswith("heap@"):
                    self.heap_nodes.append(node)

        self._owner_cache: Dict[int, Optional[str]] = {}
        self._base_lines: Optional[Dict[int, Provenance]] = None
        self._pts_cache: Dict[int, object] = {}
        self._local_nodes: Optional[frozenset] = None
        # Function-block satellites (the function variable, its return
        # slot, its parameters): never part of the global namespace.
        self._function_block_nodes = set()
        for info in self.functions.values():
            self._function_block_nodes.update(
                range(info.node, info.node + info.block_size)
            )

    def dataflow_view(
        self,
    ) -> Tuple[ConstraintSystem, PointsToSolution, Mapping[int, Tuple[int, ...]]]:
        """The most precise (system, solution, clone instances) triple
        available for value-flow clients.

        Under k-CFA the *projected* solution separates pointer targets,
        but value flow routed through base-space memory edges would
        re-merge at shared stores; propagating over the *expanded*
        system with the clone-space solution keeps contexts apart.  The
        instance map sends each base variable to its clones so seeds
        and sinks cover every context of a variable.
        """
        if (
            self.expansion is not None
            and self.expanded_solution is not None
            and not self.expansion.is_identity()
        ):
            return (
                self.expansion.expanded,
                self.expanded_solution,
                self.expansion.clone_groups,
            )
        return self.system, self.solution, {}

    # ------------------------------------------------------------------
    # Location classification (front-end naming conventions)
    # ------------------------------------------------------------------

    def name_of(self, node: int) -> str:
        return self.system.name_of(node)

    def owner(self, node: int) -> Optional[str]:
        if node not in self._owner_cache:
            self._owner_cache[node] = owner_of(self.system.name_of(node))
        return self._owner_cache[node]

    def is_function(self, node: int) -> bool:
        return node in self.functions

    def is_heap(self, node: int) -> bool:
        return self.system.name_of(node).startswith("heap@")

    def is_synthetic_object(self, node: int) -> bool:
        """Strings, externs, field variables, the null object."""
        name = self.system.name_of(node)
        return name.startswith(("str@", "<extern:", "<field:", "<null>"))

    def is_local(self, node: int) -> bool:
        """A function-owned stack location (local, param or temporary)."""
        return self.owner(node) is not None and not self.is_function(node)

    def is_global_var(self, node: int) -> bool:
        """A named file-scope variable — lives for the whole execution."""
        if node in self._function_block_nodes:
            return False
        if self.owner(node) is not None:
            return False
        if self.is_heap(node) or self.is_synthetic_object(node):
            return False
        return True

    def local_nodes(self) -> frozenset:
        """All function-owned stack locations, computed once.

        The dangling checker intersects every persistent holder's
        points-to set against this; membership beats re-deriving
        ownership per pointee on large solutions.
        """
        if self._local_nodes is None:
            self._local_nodes = frozenset(
                node
                for node in range(self.system.num_vars)
                if self.is_local(node)
            )
        return self._local_nodes

    # ------------------------------------------------------------------
    # Constraint-derived indexes
    # ------------------------------------------------------------------

    def deref_sites(self) -> Iterator[DerefSite]:
        """All pointer dereferences, call-site desugarings included."""
        for constraint in self.system.constraints:
            if constraint.kind is ConstraintKind.LOAD:
                yield DerefSite(constraint, constraint.src, constraint.offset)
            elif constraint.kind is ConstraintKind.STORE:
                yield DerefSite(constraint, constraint.dst, constraint.offset)

    def is_call_site(self, site: DerefSite) -> bool:
        """Whether an offset dereference is a desugared indirect call.

        Provenance makes this exact: ``IndirectCall`` constructs, or any
        positive call-site id — the builder only stamps site ids on the
        constraints a call desugars into.  For provenance-free inputs,
        fall back to "some pointee is a function" — the heuristic the
        call-graph client also implies.
        """
        if site.offset == 0:
            return False
        if site.prov is not None:
            return site.prov.construct == "IndirectCall" or bool(site.prov.site)
        return any(loc in self.functions for loc in self.pts(site.pointer))

    def address_taken_prov(self, loc: int) -> Optional[Provenance]:
        """Provenance of the first ``x = &loc`` constraint (where the
        location's address entered the points-to world)."""
        if self._base_lines is None:
            index: Dict[int, Provenance] = {}
            for constraint in self.system.constraints:
                if (
                    constraint.kind is ConstraintKind.BASE
                    and constraint.prov is not None
                    and constraint.src not in index
                ):
                    index[constraint.src] = constraint.prov
            self._base_lines = index
        return self._base_lines.get(loc)

    def location_line(self, loc: int) -> int:
        """Best source line for an abstract location: its allocation-site
        name if it encodes one, else where its address was first taken."""
        encoded = site_line_of(self.system.name_of(loc))
        if encoded:
            return encoded
        prov = self.address_taken_prov(loc)
        return prov.line if prov is not None else 0

    # ------------------------------------------------------------------
    # Points-to shorthands
    # ------------------------------------------------------------------

    def pts(self, var: int):
        """``points_to`` with per-context memoization: the checkers ask
        about overlapping pointer populations, and materializing a
        backing-native set into a frozenset is the expensive part."""
        cached = self._pts_cache.get(var)
        if cached is None:
            cached = self.solution.points_to(var)
            self._pts_cache[var] = cached
        return cached

    def pts_names(self, var: int, limit: int = 3) -> str:
        """Human-readable pointee list for messages, truncated."""
        names = sorted(self.system.name_of(loc) for loc in self.pts(var))
        shown = ", ".join(names[:limit])
        if len(names) > limit:
            shown += f", ... ({len(names)} total)"
        return shown

    def describe(self, node: int) -> str:
        """A message-friendly name: strips generator temporary noise."""
        name = self.system.name_of(node)
        if "$" in name:  # "fn$tag<N>@<line>" — cite the expression spot
            fn, tail = name.split("$", 1)
            return f"expression in {fn}() (temporary {tail})"
        return f"'{name}'"


def constraints_by_line(system: ConstraintSystem) -> Dict[int, List[Constraint]]:
    """Index a system's constraints by provenance line (diagnostic aid)."""
    index: Dict[int, List[Constraint]] = {}
    for constraint in system.constraints:
        if constraint.prov is not None and constraint.prov.line > 0:
            index.setdefault(constraint.prov.line, []).append(constraint)
    return index
