"""Dataflow-engine clients registered as checkers.

Two headline rules ride the interprocedural propagation engine in
:mod:`repro.dataflow`:

- **taint-flow**: untrusted data (``getenv``, ``fgets``, ``recv``, ...)
  reaching a sensitive sink (``system``, ``exec*``, ``popen``), traced
  through assignments, loads/stores via the points-to relation and
  across calls; each finding carries its source site as a related
  location plus the witness path's line numbers.
- **race**: write/write and read/write conflicts on may-aliasing shared
  locations between threads introduced by ``pthread_create``-style
  spawns, filtered by the lockset discipline; each finding is a
  two-site diagnostic (first access primary, second access related).

Both are pure clients of the solved points-to relation, so solver
precision (k-CFA depth, ``lcd+hcd`` vs ``steensgaard``) shows up
directly as fewer or more findings — the corpus pins those deltas.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.escape import EscapeAnalysis
from repro.checkers.context import CheckContext
from repro.checkers.diagnostics import Diagnostic, RelatedLocation, Severity
from repro.checkers.registry import register_checker
from repro.dataflow.races import RaceAccess, find_races
from repro.dataflow.taint import find_taint_flows


def _format_path(lines: Tuple[int, ...], limit: int = 6) -> str:
    if len(lines) <= 1:
        return ""
    shown = [str(line) for line in lines[:limit]]
    if len(lines) > limit:
        shown.append("...")
    return " via lines " + " -> ".join(shown)


@register_checker(
    "taint-flow",
    severity=Severity.ERROR,
    description="untrusted data reaches a sensitive sink",
)
def check_taint_flow(ctx: CheckContext) -> Iterator[Diagnostic]:
    """Seed every taint source the front end recorded, propagate over
    the value-flow graph (clone space under k-CFA), and report each
    sink a source's taint bit reaches."""
    program = ctx.program
    if program is None or not program.taint_sources or not program.taint_sinks:
        return
    system, solution, instances = ctx.dataflow_view()
    findings, _stats = find_taint_flows(
        system,
        solution,
        program.taint_sources,
        program.taint_sinks,
        instances=instances,
    )
    for finding in findings:
        source, sink = finding.source, finding.sink
        yield Diagnostic(
            rule="taint-flow",
            severity=Severity.ERROR,
            message=(
                f"untrusted data from {source.name}() (line {source.line}) "
                f"reaches {sink.name}()"
                + _format_path(finding.path_lines)
            ),
            line=sink.line,
            construct="Call",
            file=ctx.path,
            related=(
                RelatedLocation(
                    message=f"tainted by {source.name}() here",
                    line=source.line,
                    file=ctx.path,
                ),
            ),
        )


def _describe_access(ctx: CheckContext, access: RaceAccess) -> str:
    kind = "write" if access.write else "read"
    fn = ctx.name_of(access.function)
    return f"{kind} in {fn}() at line {access.line}"


@register_checker(
    "race",
    severity=Severity.WARNING,
    description="unsynchronized conflicting accesses to a shared location",
)
def check_race(ctx: CheckContext) -> Iterator[Diagnostic]:
    """Threads come from spawn events (entries = the start pointer's
    function pointees), shared locations from escape analysis plus
    globals/heap, locksets from the intersection-meet engine; any
    conflicting pair with disjoint locksets on may-aliasing shared
    storage is a two-site finding."""
    program = ctx.program
    if program is None or not program.thread_spawns:
        return
    escaped = EscapeAnalysis(program, ctx.solution).escaped_nodes()
    findings = find_races(
        ctx.system,
        ctx.solution,
        program.thread_spawns,
        program.lock_ops,
        escaped,
    )
    for finding in findings:
        first, second = finding.first, finding.second
        location = ctx.name_of(finding.location)
        yield Diagnostic(
            rule="race",
            severity=Severity.WARNING,
            message=(
                f"possible data race on '{location}': "
                f"{_describe_access(ctx, first)} ({finding.first_thread}) "
                f"conflicts with {_describe_access(ctx, second)} "
                f"({finding.second_thread}) with no common lock"
            ),
            line=first.line,
            construct="Race",
            file=ctx.path,
            related=(
                RelatedLocation(
                    message=(
                        f"conflicting {_describe_access(ctx, second)} "
                        f"({finding.second_thread})"
                    ),
                    line=second.line,
                    file=ctx.path,
                ),
            ),
        )
