"""Finding baselines: suppress known findings, fail only on new ones.

The adoption story for a checker on a legacy codebase: record today's
findings once (``repro check --baseline state.json`` with no file
present writes it), then every subsequent run reports — and fails CI
on — only findings *not* in the recorded set.

A finding's identity is a fingerprint over the fields that survive
re-running the analysis (rule, file, line, construct, message); the
witness-bearing ``related`` sites are deliberately excluded so a
message-identical finding does not churn when an unrelated edit shifts
a secondary site.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Set

from repro.checkers.diagnostics import CheckReport, Diagnostic

BASELINE_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """A stable identity for one finding across runs."""
    key = "|".join(
        (diag.rule, diag.file, str(diag.line), diag.construct, diag.message)
    )
    return hashlib.sha1(key.encode("utf-8")).hexdigest()


def write_baseline(path: str, report: CheckReport) -> int:
    """Record the report's fingerprints; returns how many were written."""
    prints = sorted({fingerprint(d) for d in report})
    document = {"version": BASELINE_VERSION, "fingerprints": prints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(prints)


def read_baseline(path: str) -> Set[str]:
    """The recorded fingerprint set (raises on malformed files)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("fingerprints"), list)
    ):
        raise ValueError(f"{path} is not a repro-check baseline file")
    return set(document["fingerprints"])


def apply_baseline(path: str, report: CheckReport) -> "tuple[CheckReport, bool]":
    """Filter ``report`` against the baseline at ``path``.

    Returns ``(filtered report, created)``: when the file does not
    exist yet it is written from the full report and the filtered
    report is empty (nothing is "new" on the recording run).
    """
    if not os.path.exists(path):
        write_baseline(path, report)
        return CheckReport(), True
    known = read_baseline(path)
    fresh: List[Diagnostic] = [
        d for d in report if fingerprint(d) not in known
    ]
    return CheckReport(fresh), False
