"""Diagnostics: what a checker reports and how it is rendered.

A :class:`Diagnostic` is one finding — a rule id, a severity, a message
and a source location recovered from constraint provenance.  A
:class:`CheckReport` is the ordered collection a checker run produces;
it renders to compiler-style text here and to SARIF in
:mod:`repro.checkers.sarif`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally.

    The integer values only encode ordering (``NOTE < WARNING < ERROR``);
    the SARIF ``level`` strings come from :attr:`label`.
    """

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            options = ", ".join(s.label for s in cls)
            raise ValueError(
                f"unknown severity {text!r} (want one of {options})"
            ) from None


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary site of a finding (SARIF ``relatedLocations``).

    Two-site diagnostics — a race's other access, a taint flow's source
    — anchor their counterpart here; the primary location stays on the
    :class:`Diagnostic` itself.
    """

    message: str
    #: 1-based source line; 0 when unknown.
    line: int = 0
    #: Path of the file holding the secondary site.
    file: str = "<input>"

    def render(self) -> str:
        where = f"{self.file}:{self.line}" if self.line > 0 else self.file
        return f"{where}: note: {self.message}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to the source line its provenance names."""

    rule: str
    severity: Severity
    message: str
    #: 1-based source line; 0 when the provenance chain had no location.
    line: int = 0
    #: Originating AST construct from the provenance record, if any.
    construct: str = ""
    #: Path of the checked translation unit (or ``<input>``).
    file: str = "<input>"
    #: Secondary sites (kept a tuple: diagnostics must stay hashable).
    related: Tuple[RelatedLocation, ...] = ()

    def sort_key(self) -> Tuple:
        return (self.file, self.line, self.rule, self.message)

    def render(self) -> str:
        """Compiler-style listing: ``file:line: severity: message [rule]``
        plus one indented ``note:`` line per related location."""
        where = f"{self.file}:{self.line}" if self.line > 0 else self.file
        head = f"{where}: {self.severity.label}: {self.message} [{self.rule}]"
        if not self.related:
            return head
        return "\n".join([head, *(f"  {r.render()}" for r in self.related)])


@dataclass
class CheckReport:
    """The findings of one checker run, in source order."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def finalize(self) -> None:
        """Deduplicate and order by location (stable for goldens)."""
        self.diagnostics = sorted(set(self.diagnostics), key=Diagnostic.sort_key)

    def filtered(self, min_severity: Severity) -> "CheckReport":
        return CheckReport(
            [d for d in self.diagnostics if d.severity >= min_severity]
        )

    def counts(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for diag in self.diagnostics:
            result[diag.severity.label] = result.get(diag.severity.label, 0) + 1
        return result

    def by_rule(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for diag in self.diagnostics:
            result[diag.rule] = result.get(diag.rule, 0) + 1
        return result

    def to_text(self) -> str:
        """The full compiler-style listing plus a one-line summary."""
        lines = [diag.render() for diag in self.diagnostics]
        if not lines:
            return "no findings\n"
        summary = ", ".join(
            f"{count} {label}" for label, count in sorted(self.counts().items())
        )
        lines.append(f"{len(self.diagnostics)} finding(s): {summary}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckReport):
            return NotImplemented
        return self.diagnostics == other.diagnostics
