"""The built-in checkers.

Each checker is a pure function from a :class:`CheckContext` to
diagnostics, registered on the :mod:`~repro.checkers.registry`.  They
are deliberately *clients* of the points-to solution — everything they
know comes from ``ctx.pts`` plus the constraint provenance — so running
them against solvers of different precision (``lcd+hcd`` versus
``steensgaard``) measures exactly what the paper's Section 2 argues:
imprecision surfaces as extra findings.

Monotonicity matters for that comparison and differs per checker:

- **bad-indirect-call** and **dangling-stack-escape** are *monotone* —
  a coarser (larger) solution can only add findings, so Steensgaard
  reports a superset and the delta is pure false positives;
- **null-deref**, **heap-leak** and **invalid-field-offset** quantify
  over *every* pointee ("pts is exactly null", "unreachable from all
  roots", "outside every layout"), so extra pointees can mask a real
  bug rather than add a false one.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.checkers.context import CheckContext
from repro.checkers.diagnostics import Diagnostic, RelatedLocation, Severity
from repro.checkers.registry import register_checker


def _site_note(ctx: CheckContext, loc: int, message: str) -> Tuple[RelatedLocation, ...]:
    """A related location for an abstract location, when it has one.

    Findings used to *mention* their secondary site only in the message
    text, dropping the location; anchoring it here lets SARIF consumers
    jump to both sites."""
    line = ctx.location_line(loc)
    if line < 1:
        return ()
    return (RelatedLocation(message=message, line=line, file=ctx.path),)


@register_checker(
    "null-deref",
    severity=Severity.ERROR,
    description="dereference of a pointer whose only value is NULL",
)
def check_null_deref(ctx: CheckContext) -> Iterator[Diagnostic]:
    """A dereference is definitely-null when the analysis — which only
    over-approximates — still cannot find any pointee but ``<null>``."""
    null_node = ctx.null_node
    for site in ctx.deref_sites():
        if ctx.is_call_site(site):
            continue
        pts = ctx.pts(site.pointer)
        if pts:
            if null_node is not None and all(loc == null_node for loc in pts):
                yield Diagnostic(
                    rule="null-deref",
                    severity=Severity.ERROR,
                    message=(
                        f"dereference of {ctx.describe(site.pointer)} "
                        "which can only be NULL"
                    ),
                    line=site.line,
                    construct=site.prov.construct if site.prov else "",
                    file=ctx.path,
                )
        elif site.prov is not None and not site.prov.synthesized:
            # No pointee at all: nothing was ever assigned.  Informational
            # (NOTE) because uncalled code trips it on sound programs.
            yield Diagnostic(
                rule="null-deref",
                severity=Severity.NOTE,
                message=(
                    f"dereference of {ctx.describe(site.pointer)} "
                    "which has no referents (uninitialized?)"
                ),
                line=site.line,
                construct=site.prov.construct,
                file=ctx.path,
            )


@register_checker(
    "dangling-stack-escape",
    severity=Severity.WARNING,
    description="address of a stack local outlives its frame",
)
def check_dangling_stack_escape(ctx: CheckContext) -> Iterator[Diagnostic]:
    """A local is dangling-prone when a *persistent* holder — a global
    variable, a heap object, or the owner's own return slot — may point
    at it.  Inner frames holding an outer local (ordinary ``&x``
    arguments) are fine and not reported."""
    locals_ = ctx.local_nodes()
    if not locals_:
        return
    return_owner: Dict[int, str] = {
        info.return_node: info.name for info in ctx.functions.values()
    }
    for holder in range(ctx.system.num_vars):
        via = None
        if ctx.is_global_var(holder):
            via = f"global '{ctx.name_of(holder)}'"
        elif ctx.is_heap(holder):
            via = f"heap object '{ctx.name_of(holder)}'"
        elif holder in return_owner:
            via = f"return value of {return_owner[holder]}()"
        if via is None:
            continue
        for loc in ctx.pts(holder):
            if loc not in locals_:
                continue
            loc_owner = ctx.owner(loc)
            if holder in return_owner and return_owner[holder] != loc_owner:
                # Another function returning a forwarded address: the
                # escape is reported at the frame that leaked it.
                continue
            yield Diagnostic(
                rule="dangling-stack-escape",
                severity=Severity.ERROR
                if holder in return_owner
                else Severity.WARNING,
                message=(
                    f"address of local '{ctx.name_of(loc)}' may outlive "
                    f"its frame via {via}"
                ),
                line=ctx.location_line(loc),
                construct="AddressOf",
                file=ctx.path,
                related=_site_note(
                    ctx, holder, f"held past the frame by {via}"
                ),
            )


@register_checker(
    "heap-leak",
    severity=Severity.WARNING,
    description="heap allocation unreachable from any root at exit",
)
def check_heap_leak(ctx: CheckContext) -> Iterator[Diagnostic]:
    """Reachability at exit: roots are global variables plus ``main``'s
    frame (alive until the program ends).  A heap object no chain of
    pointers connects to any root has provably leaked — there is no
    free() modelling to get wrong, because losing the last reference is
    already the bug."""
    if not ctx.heap_nodes:
        return
    roots: List[int] = []
    for var in range(ctx.system.num_vars):
        if ctx.is_global_var(var) or ctx.owner(var) == "main":
            roots.append(var)
    reachable: Set[int] = set()
    stack: List[int] = []
    for root in roots:
        for loc in ctx.pts(root):
            if loc not in reachable:
                reachable.add(loc)
                stack.append(loc)
    while stack:
        loc = stack.pop()
        for nxt in ctx.pts(loc):
            if nxt not in reachable:
                reachable.add(nxt)
                stack.append(nxt)
    for heap_node in ctx.heap_nodes:
        if heap_node not in reachable:
            yield Diagnostic(
                rule="heap-leak",
                severity=Severity.WARNING,
                message=(
                    f"allocation '{ctx.name_of(heap_node)}' is unreachable "
                    "from every root at exit (leaked)"
                ),
                line=ctx.location_line(heap_node),
                construct="Alloc",
                file=ctx.path,
            )


@register_checker(
    "bad-indirect-call",
    severity=Severity.WARNING,
    description="indirect call whose targets include non-functions",
)
def check_bad_indirect_call(ctx: CheckContext) -> Iterator[Diagnostic]:
    """Every pointee of a called pointer must be a function whose block
    covers the accessed parameter offset — precisely the pointees
    ``build_call_graph`` (and the solvers' own offset filtering)
    silently drop.  Dropping them is sound for the analysis; for the
    program it means the call would be through a corrupted pointer."""
    # One site spans several constraints (a STORE per argument, a LOAD
    # for the return value): aggregate per (pointer, line) first.
    sites: Dict[Tuple[int, int], Dict[int, int]] = {}
    for site in ctx.deref_sites():
        if not ctx.is_call_site(site):
            continue
        worst = sites.setdefault((site.pointer, site.line), {})
        for loc in ctx.pts(site.pointer):
            info = ctx.functions.get(loc)
            if info is None:
                worst[loc] = -1  # not a function at all
            elif info.max_offset < site.offset:
                worst[loc] = max(worst.get(loc, 0), site.offset)
    for (pointer, line), targets in sorted(sites.items()):
        for loc, offset in sorted(targets.items()):
            if offset < 0:
                what = f"non-function location '{ctx.name_of(loc)}'"
                if loc == ctx.null_node:
                    what = "NULL"
                message = (
                    f"indirect call through {ctx.describe(pointer)} "
                    f"may target {what}"
                )
            else:
                info = ctx.functions[loc]
                message = (
                    f"indirect call through {ctx.describe(pointer)} may "
                    f"target {info.name}() with too few parameters "
                    f"({info.param_count} declared, argument slot "
                    f"+{offset} accessed)"
                )
            yield Diagnostic(
                rule="bad-indirect-call",
                severity=Severity.WARNING,
                message=message,
                line=line,
                construct="IndirectCall",
                file=ctx.path,
                related=_site_note(
                    ctx,
                    loc,
                    f"offending target '{ctx.name_of(loc)}' originates here",
                ),
            )


@register_checker(
    "invalid-field-offset",
    severity=Severity.WARNING,
    description="field offset outside every pointee's layout",
)
def check_invalid_field_offset(ctx: CheckContext) -> Iterator[Diagnostic]:
    """An offset dereference (or field-address OFFS) that no pointee's
    block can accommodate: ``max_offset`` makes the solvers skip such
    pointees silently, so when *every* pointee is skipped the access
    denotes nothing — an out-of-layout field access in the source."""
    max_offset = ctx.system.max_offset
    seen: Set[Tuple[int, int, int]] = set()
    for constraint in ctx.system.constraints:
        if not constraint.offset:
            continue
        kind = constraint.kind.value
        if kind == "load":
            pointer = constraint.src
        elif kind == "store":
            pointer = constraint.dst
        elif kind == "offs":
            pointer = constraint.src
        else:
            continue
        prov = constraint.prov
        if prov is not None and prov.construct in ("IndirectCall", "Call"):
            continue  # call desugarings belong to bad-indirect-call
        pts = ctx.pts(pointer)
        if not pts:
            continue
        if kind != "offs" and any(loc in ctx.functions for loc in pts):
            # Provenance-free call-site heuristic (bare .cons input).
            if prov is None:
                continue
        if any(max_offset[loc] >= constraint.offset for loc in pts):
            continue
        line = prov.line if prov is not None else 0
        key = (pointer, constraint.offset, line)
        if key in seen:
            continue
        seen.add(key)
        largest = max(max_offset[loc] for loc in pts)
        yield Diagnostic(
            rule="invalid-field-offset",
            severity=Severity.WARNING,
            message=(
                f"field offset +{constraint.offset} on "
                f"{ctx.describe(pointer)} is outside every pointee's "
                f"layout (largest is +{largest})"
            ),
            line=line,
            construct=prov.construct if prov is not None else "",
            file=ctx.path,
        )
