"""Checker registry: names to checker functions.

A checker is a function ``(CheckContext) -> Iterable[Diagnostic]``
registered under a stable rule id::

    @register_checker(
        "null-deref",
        severity=Severity.ERROR,
        description="dereference of a definitely-null pointer",
    )
    def check_null_deref(ctx):
        ...

The registry is what the CLI's ``--checker``/``--disable-checker`` flags
and the SARIF rule table are generated from; checkers never import each
other, only the shared :class:`~repro.checkers.context.CheckContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence

from repro.checkers.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checkers.context import CheckContext

CheckerFn = Callable[["CheckContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class CheckerInfo:
    """One registered checker.

    Checkers that only make sense on front-end programs (qualified
    names, heap sites) still run on bare ``.cons`` systems — they just
    find nothing when the naming conventions are absent.
    """

    name: str
    severity: Severity
    description: str
    func: CheckerFn

    def run(self, ctx: "CheckContext") -> List[Diagnostic]:
        return list(self.func(ctx))


_REGISTRY: Dict[str, CheckerInfo] = {}


def register_checker(
    name: str, severity: Severity, description: str
) -> Callable[[CheckerFn], CheckerFn]:
    """Class-less plugin point: decorate a function to add a checker."""

    def decorate(func: CheckerFn) -> CheckerFn:
        if name in _REGISTRY:
            raise ValueError(f"checker {name!r} already registered")
        _REGISTRY[name] = CheckerInfo(
            name=name, severity=severity, description=description, func=func
        )
        return func

    return decorate


def registered_checkers() -> List[CheckerInfo]:
    """All checkers, in registration order (stable for SARIF rules)."""
    return list(_REGISTRY.values())


def checker_names() -> List[str]:
    return list(_REGISTRY)


def get_checker(name: str) -> CheckerInfo:
    info = _REGISTRY.get(name)
    if info is None:
        options = ", ".join(_REGISTRY) or "<none>"
        raise ValueError(f"unknown checker {name!r} (registered: {options})")
    return info


def select_checkers(
    enabled: Optional[Sequence[str]] = None,
    disabled: Optional[Sequence[str]] = None,
) -> List[CheckerInfo]:
    """Resolve the CLI's enable/disable flags to a checker list.

    ``enabled=None`` means "all registered"; names are validated so a
    typo fails loudly instead of silently checking nothing.
    """
    if enabled is None:
        selected = registered_checkers()
    else:
        selected = [get_checker(name) for name in enabled]
    if disabled:
        drop = {get_checker(name).name for name in disabled}
        selected = [info for info in selected if info.name not in drop]
    return selected
