"""Points-to-powered bug checkers.

The downstream client the paper's introduction promises: once the
points-to relation is solved, a family of checkers interrogates it for
definite bug patterns, and constraint *provenance* (threaded from the C
front-end through builder, parser and minimizer) maps every finding
back to a source line.  See ``docs/tutorial.md`` ("Checkers") for the
walkthrough and ``docs/internals.md`` for the registry design.

>>> from repro.checkers import run_checkers
>>> from repro.frontend.generator import generate_constraints
>>> from repro.solvers import solve
>>> prog = generate_constraints("int *g;\\nint main() { int x; g = &x; return 0; }")
>>> sol = solve(prog.system, "lcd+hcd")
>>> [d.rule for d in run_checkers(prog.system, sol, program=prog)]
['dangling-stack-escape']
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.solution import PointsToSolution
from repro.checkers import checks as _checks  # noqa: F401  (registers built-ins)
from repro.checkers import dataflow_checks as _dataflow_checks  # noqa: F401
from repro.checkers.context import CheckContext
from repro.checkers.diagnostics import (
    CheckReport,
    Diagnostic,
    RelatedLocation,
    Severity,
)
from repro.checkers.registry import (
    CheckerInfo,
    checker_names,
    get_checker,
    register_checker,
    registered_checkers,
    select_checkers,
)
from repro.checkers.sarif import (
    SarifValidationError,
    from_sarif,
    to_sarif,
    validate_sarif,
)
from repro.constraints.model import ConstraintSystem
from repro.frontend.generator import GeneratedProgram

__all__ = [
    "CheckContext",
    "CheckReport",
    "CheckerInfo",
    "Diagnostic",
    "RelatedLocation",
    "SarifValidationError",
    "Severity",
    "checker_names",
    "from_sarif",
    "get_checker",
    "register_checker",
    "registered_checkers",
    "run_checkers",
    "select_checkers",
    "to_sarif",
    "validate_sarif",
]


def run_checkers(
    system: ConstraintSystem,
    solution: PointsToSolution,
    program: Optional[GeneratedProgram] = None,
    path: str = "<input>",
    checkers: Optional[Sequence[str]] = None,
    disabled: Optional[Sequence[str]] = None,
    min_severity: Severity = Severity.NOTE,
    expansion=None,
    expanded_solution: Optional[PointsToSolution] = None,
) -> CheckReport:
    """Run (a selection of) the registered checkers over one solution.

    ``checkers=None`` runs everything registered; ``disabled`` drops
    names from that selection; findings below ``min_severity`` are
    filtered out.  The report is deduplicated and source-ordered.
    ``expansion``/``expanded_solution`` (from a k-CFA solver's
    ``context``/``context_solution()``) let value-flow clients
    propagate in clone space for context-sensitive precision.
    """
    ctx = CheckContext(
        system,
        solution,
        program=program,
        path=path,
        expansion=expansion,
        expanded_solution=expanded_solution,
    )
    report = CheckReport()
    for info in select_checkers(checkers, disabled):
        report.extend(info.run(ctx))
    report.finalize()
    return report.filtered(min_severity)
