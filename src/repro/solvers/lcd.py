"""Lazy Cycle Detection (paper Section 4.1, Figure 2).

Cycle members end up with identical points-to sets, so LCD inverts the
usual search discipline: instead of looking for cycles when edges are
*created*, it waits for their *effect* — before propagating across an edge
``n -> z`` it checks whether ``pts(n) == pts(z)`` already, and only then
launches a depth-first search rooted at ``z``.

Two refinements keep the heuristic cheap and focused:

- an edge never triggers a search twice (the set ``R`` below), so node
  pairs that coincidentally share a points-to set without being in a cycle
  cannot cause repeated searches — this is what makes LCD *incomplete*;
- empty set pairs never trigger (an empty-vs-empty match carries no
  evidence of a cycle).

The detection itself is a Nuutila SCC pass over the subgraph reachable
from ``z``; every non-trivial component found along the way is collapsed.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.datastructs.worklist import make_worklist
from repro.graph.scc import nuutila_scc
from repro.solvers.base import GraphSolver


class LCDSolver(GraphSolver):
    """Figure 2: lazy, effect-triggered cycle detection.

    ``once_per_edge`` is the paper's refinement ("we never trigger cycle
    detection on the same edge twice"); it can be disabled to measure the
    ablation — expect many more fruitless searches.
    """

    name = "lcd"

    def __init__(self, *args, once_per_edge: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.difference_propagation:
            raise ValueError(
                "LCD propagates inline (its trigger compares full sets); "
                "difference propagation is supported by naive/hcd/pkh/pkh03"
            )
        self.once_per_edge = once_per_edge

    def _run(self) -> PointsToSolution:
        graph = self.graph
        worklist = make_worklist(self.worklist_strategy)
        #: R — edges that already triggered a (possibly fruitless) search.
        attempted: Set[Tuple[int, int]] = set()

        for node in graph.rep_nodes():
            if len(graph.pts_of(node)):
                worklist.push(node)

        if self._fused:
            self._run_fused(worklist, attempted)
        else:
            while worklist:
                node = graph.find(worklist.pop())
                self.stats.iterations += 1
                if self.hcd_enabled:
                    node = self.hcd_check(node, worklist.push)
                self.resolve_complex(node, worklist.push)

                for raw_succ in list(graph.successors(node)):
                    rep = graph.find(node)
                    succ = graph.find(raw_succ)
                    if succ == rep:
                        continue
                    pts_rep = graph.pts_of(rep)
                    pts_succ = graph.pts_of(succ)
                    edge = (rep, succ)
                    if (
                        len(pts_rep)
                        and pts_succ.same_as(pts_rep)
                        and edge not in attempted
                    ):
                        if self.once_per_edge:
                            attempted.add(edge)
                        if self.sanitizer is not None:
                            self.sanitizer.on_lcd_trigger(edge)
                        self.stats.lcd_triggers += 1
                        self._detect_and_collapse(succ, worklist.push)
                        rep = graph.find(node)
                        succ = graph.find(raw_succ)
                        if succ == rep:
                            continue
                    self.stats.propagations += 1
                    if graph.pts_of(succ).ior_and_test(graph.pts_of(rep)):
                        worklist.push(succ)

        return self._export_solution()

    def _run_fused(self, worklist, attempted: Set[Tuple[int, int]]) -> None:
        """The Figure 2 loop on the fused kernel: union-find and points-to
        lists hoisted into locals, the trigger's set equality downgraded
        to a canonical-object comparison, and edge unions memoized by id
        through the intern table — bignum ops only, no per-element work."""
        graph = self.graph
        uf_find = graph.uf.find
        #: Direct parent-array fast path: nodes that are their own parent
        #: (the overwhelming majority) resolve with two list indexes and
        #: no call; chains fall back to the compressing find.
        parent = graph.uf._parent
        pts_list = graph.pts
        stats = self.stats
        push = worklist.push
        union = self.family.table.union

        while worklist:
            node = uf_find(worklist.pop())
            stats.iterations += 1
            if self.hcd_enabled:
                node = self.hcd_check(node, push)
            self.resolve_complex(node, push)

            rep = uf_find(node)
            pts_rep = pts_list[rep]
            pts_rep_bits = pts_rep.bits
            # Triggers collect during the sweep and launch ONE multi-root
            # DFS afterwards: overlapping reachable regions are searched
            # once (Nuutila shares visited state across roots) instead of
            # once per trigger, and the sweep's representatives stay
            # stable, keeping the hoisted locals valid throughout.
            trigger_roots = []
            edge_bits = graph.succ[rep].bits
            while edge_bits:
                low = edge_bits & -edge_bits
                edge_bits ^= low
                raw = low.bit_length() - 1
                succ = parent[raw]
                if parent[succ] != succ:
                    succ = uf_find(raw)
                if succ == rep:
                    continue
                pts_succ = pts_list[succ]
                if pts_succ.bits == pts_rep_bits and pts_rep_bits:
                    edge = (rep, succ)
                    if edge not in attempted:
                        if self.once_per_edge:
                            attempted.add(edge)
                        if self.sanitizer is not None:
                            self.sanitizer.on_lcd_trigger(edge)
                        stats.lcd_triggers += 1
                        trigger_roots.append(succ)
                    continue  # equal sets: the union below is a no-op
                stats.propagations += 1
                target_id = pts_succ.node_id
                merged_bits, merged_id = union(
                    pts_succ.bits, target_id, pts_rep_bits, pts_rep.node_id
                )
                if merged_id != target_id:
                    pts_succ.bits = merged_bits
                    pts_succ.node_id = merged_id
                    push(succ)
            if trigger_roots:
                self._detect_and_collapse(trigger_roots, push)

    def _detect_and_collapse(self, roots, push) -> None:
        """DFS (Nuutila) from ``roots``; collapse every cycle found.

        ``roots`` is one node or a list of them — a multi-root search
        shares its visited state, so overlapping reachable regions cost
        one traversal (the fused loop batches a whole sweep's triggers).
        """
        graph = self.graph
        visited = 0

        if self._fused:
            # Same normalization as graph.successors, without the
            # generator machinery — this callback runs once per node the
            # DFS touches, which LCD does a lot of.
            uf_find = graph.uf.find
            parent = graph.uf._parent
            succ_list = graph.succ

            def successors(node: int):
                nonlocal visited
                visited += 1
                node = uf_find(node)
                out = []
                bits = succ_list[node].bits
                while bits:
                    low = bits & -bits
                    bits ^= low
                    raw = low.bit_length() - 1
                    rep = parent[raw]
                    if parent[rep] != rep:
                        rep = uf_find(raw)
                    if rep != node:
                        out.append(rep)
                return out

        else:

            def successors(node: int):
                nonlocal visited
                visited += 1
                return list(graph.successors(node))

        if isinstance(roots, int):
            roots = [roots]
        components = nuutila_scc([graph.find(root) for root in roots], successors)
        self.stats.nodes_searched += max(visited, len(components))
        for component in components:
            if len(component) >= 2:
                rep = self.collapse_nodes(component, push)
                push(rep)
