"""Lazy Cycle Detection (paper Section 4.1, Figure 2).

Cycle members end up with identical points-to sets, so LCD inverts the
usual search discipline: instead of looking for cycles when edges are
*created*, it waits for their *effect* — before propagating across an edge
``n -> z`` it checks whether ``pts(n) == pts(z)`` already, and only then
launches a depth-first search rooted at ``z``.

Two refinements keep the heuristic cheap and focused:

- an edge never triggers a search twice (the set ``R`` below), so node
  pairs that coincidentally share a points-to set without being in a cycle
  cannot cause repeated searches — this is what makes LCD *incomplete*;
- empty set pairs never trigger (an empty-vs-empty match carries no
  evidence of a cycle).

The detection itself is a Nuutila SCC pass over the subgraph reachable
from ``z``; every non-trivial component found along the way is collapsed.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.datastructs.worklist import make_worklist
from repro.graph.scc import nuutila_scc
from repro.solvers.base import GraphSolver


class LCDSolver(GraphSolver):
    """Figure 2: lazy, effect-triggered cycle detection.

    ``once_per_edge`` is the paper's refinement ("we never trigger cycle
    detection on the same edge twice"); it can be disabled to measure the
    ablation — expect many more fruitless searches.
    """

    name = "lcd"

    def __init__(self, *args, once_per_edge: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.difference_propagation:
            raise ValueError(
                "LCD propagates inline (its trigger compares full sets); "
                "difference propagation is supported by naive/hcd/pkh/pkh03"
            )
        self.once_per_edge = once_per_edge

    def _run(self) -> PointsToSolution:
        graph = self.graph
        worklist = make_worklist(self.worklist_strategy)
        #: R — edges that already triggered a (possibly fruitless) search.
        attempted: Set[Tuple[int, int]] = set()

        for node in graph.rep_nodes():
            if len(graph.pts_of(node)):
                worklist.push(node)

        while worklist:
            node = graph.find(worklist.pop())
            self.stats.iterations += 1
            if self.hcd_enabled:
                node = self.hcd_check(node, worklist.push)
            self.resolve_complex(node, worklist.push)

            for raw_succ in list(graph.successors(node)):
                rep = graph.find(node)
                succ = graph.find(raw_succ)
                if succ == rep:
                    continue
                pts_rep = graph.pts_of(rep)
                pts_succ = graph.pts_of(succ)
                edge = (rep, succ)
                if (
                    len(pts_rep)
                    and pts_succ.same_as(pts_rep)
                    and edge not in attempted
                ):
                    if self.once_per_edge:
                        attempted.add(edge)
                    if self.sanitizer is not None:
                        self.sanitizer.on_lcd_trigger(edge)
                    self.stats.lcd_triggers += 1
                    self._detect_and_collapse(succ, worklist.push)
                    rep = graph.find(node)
                    succ = graph.find(raw_succ)
                    if succ == rep:
                        continue
                self.stats.propagations += 1
                if graph.pts_of(succ).ior_and_test(graph.pts_of(rep)):
                    worklist.push(succ)

        return self._export_solution()

    def _detect_and_collapse(self, root: int, push) -> None:
        """DFS (Nuutila) from ``root``; collapse every cycle found."""
        graph = self.graph
        visited = 0

        def successors(node: int):
            nonlocal visited
            visited += 1
            return list(graph.successors(node))

        components = nuutila_scc([graph.find(root)], successors)
        self.stats.nodes_searched += max(visited, len(components))
        for component in components:
            if len(component) >= 2:
                rep = self.collapse_nodes(component, push)
                push(rep)
