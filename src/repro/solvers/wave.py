"""Wave Propagation (Pereira & Berlin, CGO 2009) — follow-on extension.

The best-known successor to the paper's algorithms: like PKH it
alternates full-graph SCC collapsing with processing, but propagation
happens as a single *wave* — one pass over the acyclic graph in
topological order, each node forwarding only the **difference** between
its current and previously-propagated points-to set — and complex
constraints are then resolved in a batch against cached difference sets.
The result is a solver with no per-node worklist at all:

```
repeat
    collapse SCCs; order the DAG topologically
    wave: for n in topo order: pts(succ) |= (pts(n) - prev(n)); prev(n) = pts(n)
    resolve all complex constraints against their unprocessed pointees
until nothing changed
```

Included here because it is built directly on this paper's foundations
(its evaluation uses LCD/HCD as baselines) and slots into the same
harness — see ``benchmarks/bench_16_ablation_aggressiveness.py`` for
where it lands on the detection-aggressiveness spectrum.
"""

from __future__ import annotations

from typing import List

from repro.analysis.solution import PointsToSolution
from repro.graph.scc import tarjan_scc
from repro.solvers.base import GraphSolver


class WaveSolver(GraphSolver):
    """Round-based wave propagation with batch constraint resolution."""

    name = "wave"

    def __init__(self, *args, **kwargs) -> None:
        # Wave propagation *is* difference propagation: the flag makes
        # resolve_complex record freshly inserted edges, which the next
        # wave flushes with the full set (a difference-only wave would
        # never move already-propagated facts across a new edge).
        kwargs["difference_propagation"] = True
        super().__init__(*args, **kwargs)

    def _run(self) -> PointsToSolution:
        graph = self.graph
        changed = True
        while changed:
            self.stats.iterations += 1
            changed = False

            order = self._sweep_and_collapse()
            if self._wave(order):
                changed = True

            # Batch constraint resolution: every representative with
            # complex constraints (or pending cross-resolution jobs)
            # processes its not-yet-seen pointees.
            flag = _ChangeFlag()
            for node in list(graph.rep_nodes()):
                node = graph.find(node)
                if self.hcd_enabled:
                    node = self.hcd_check(node, flag)
                if (
                    graph.loads[node]
                    or graph.stores[node]
                    or graph.offs[node]
                    or graph.pending_complex[node]
                ):
                    before = self.stats.edges_added
                    self.resolve_complex(node, flag)
                    if self.stats.edges_added != before:
                        changed = True
            if flag.changed:
                changed = True

        return self._export_solution()

    def _sweep_and_collapse(self) -> List[int]:
        """Collapse every cycle; return representatives sources-first."""
        graph = self.graph
        reps = list(graph.rep_nodes())
        self.stats.nodes_searched += len(reps)

        def successors(node: int):
            return list(graph.successors(node))

        push = _ChangeFlag()  # pending jobs are drained by the batch phase
        components = tarjan_scc(reps, successors)
        order: List[int] = []
        for component in reversed(components):  # sources first
            if len(component) >= 2:
                order.append(self.collapse_nodes(component, push))
            else:
                order.append(component[0])
        return order

    def _wave(self, order: List[int]) -> bool:
        """One difference-propagation pass in topological order."""
        if self._fused:
            return self._wave_fused(order)
        graph = self.graph
        changed = False
        for node in order:
            node = graph.find(node)
            if self.sanitizer is not None:
                self.sanitizer.check_monotone(node)
            pts = graph.pts_of(node)
            # Edges inserted since this node's last wave carry everything.
            fresh_edges = graph.fresh_edges[node]
            if fresh_edges:
                graph.fresh_edges[node] = []
                offered = set()
                for raw in fresh_edges:
                    succ = graph.find(raw)
                    if succ == node or succ in offered:
                        continue
                    offered.add(succ)
                    self.stats.propagations += 1
                    if graph.pts_of(succ).ior_and_test(pts):
                        changed = True
            prev = graph.prev_pts[node]
            delta = [loc for loc in pts if loc not in prev]
            if not delta:
                continue
            for loc in delta:
                prev.add(loc)
            delta_set = self.family.make_from(delta)
            for succ in list(graph.successors(node)):
                self.stats.propagations += 1
                if graph.pts_of(succ).ior_and_test(delta_set):
                    changed = True
        return changed

    def _wave_fused(self, order: List[int]) -> bool:
        """The wave on the fused kernel: each node's difference is one
        ``pts & ~prev`` bignum diff, interned once and offered to every
        successor as a memoized whole-set union."""
        graph = self.graph
        uf_find = graph.uf.find
        pts_list = graph.pts
        stats = self.stats
        intern = self.family.table.intern
        changed = False
        for node in order:
            node = uf_find(node)
            if self.sanitizer is not None:
                self.sanitizer.check_monotone(node)
            pts = pts_list[node]
            fresh_edges = graph.fresh_edges[node]
            if fresh_edges:
                graph.fresh_edges[node] = []
                offered = set()
                for raw in fresh_edges:
                    succ = uf_find(raw)
                    if succ == node or succ in offered:
                        continue
                    offered.add(succ)
                    stats.propagations += 1
                    if pts_list[succ].ior_and_test(pts):
                        changed = True
            prev = graph.prev_pts[node]
            delta_bits = pts.bits & ~prev.bits
            if not delta_bits:
                continue
            prev.bits |= delta_bits
            delta_canon, delta_id = intern(delta_bits)
            for raw in list(graph.succ[node]):
                succ = uf_find(raw)
                if succ == node:
                    continue
                stats.propagations += 1
                if pts_list[succ].ior_bits_and_test(delta_canon, delta_id):
                    changed = True
        return changed


class _ChangeFlag:
    """A push-callback that just remembers whether it was invoked."""

    __slots__ = ("changed",)

    def __init__(self) -> None:
        self.changed = False

    def __call__(self, _node: int) -> None:
        self.changed = True
