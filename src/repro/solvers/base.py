"""Solver interface, statistics, and the shared HCD online machinery.

Section 5.3 of the paper explains the algorithms' relative performance
through three machine-independent counters, all tracked here:

- **nodes collapsed** — variables merged away by cycle collapsing;
- **nodes searched** — nodes visited by cycle-detection graph traversals
  (pure overhead; HCD's headline property is that this is zero);
- **propagations** — points-to set unions performed across constraint
  edges (the most expensive operation in the analysis).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintSystem
from repro.contexts.manager import ContextExpansion, CtxStats, expand_contexts
from repro.datastructs.intern_table import InternStats
from repro.datastructs.intset import iter_bits as _iter_bits
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.graph.constraint_graph import ConstraintGraph
from repro.points_to.interface import PointsToFamily, make_family
from repro.preprocess.hcd_offline import HCDOfflineResult, hcd_offline_analysis
from repro.preprocess.hvn import PreprocessResult, preprocess_system
from repro.verify.sanitizer import Sanitizer, VerifyStats


@dataclass
class OptStats:
    """Counters for the offline optimization stage (``--opt``).

    ``vars_merged`` counts variables substituted by a pointer-equivalent
    representative, ``locations_merged`` the locations folded into a
    location-equivalence class; both are undone at export time through
    the stage's substitution map, so they are pure node-count savings.
    """

    stage: str = "none"
    passes: int = 0
    vars_merged: int = 0
    locations_merged: int = 0
    constraints_deleted: int = 0
    offline_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "passes": self.passes,
            "vars_merged": self.vars_merged,
            "locations_merged": self.locations_merged,
            "constraints_deleted": self.constraints_deleted,
            "offline_seconds": self.offline_seconds,
        }


@dataclass
class ParallelStats:
    """Extra counters kept by the parallel wave solver (``wave-par``).

    ``worker_seconds`` is wall-time summed over worker tasks; comparing
    it against ``solve_seconds`` shows how much of the solve actually ran
    inside the pool versus in the coordinating process.
    """

    workers: int = 1
    waves: int = 0
    levels: int = 0
    tasks_dispatched: int = 0
    tasks_inline: int = 0
    deltas_merged: int = 0
    worker_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "workers": self.workers,
            "waves": self.waves,
            "levels": self.levels,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "deltas_merged": self.deltas_merged,
            "worker_seconds": self.worker_seconds,
        }


@dataclass
class SolverStats:
    """Counters and timings for one solver run."""

    propagations: int = 0
    nodes_searched: int = 0
    nodes_collapsed: int = 0
    cycles_collapsed: int = 0
    edges_added: int = 0
    lcd_triggers: int = 0
    hcd_collapses: int = 0
    iterations: int = 0
    hcd_offline_seconds: float = 0.0
    solve_seconds: float = 0.0
    pts_memory_bytes: int = 0
    graph_memory_bytes: int = 0
    #: Filled in by solvers that fan work out across a pool.
    parallel: Optional[ParallelStats] = None
    #: Filled in by runs using the hash-consed "shared" points-to family.
    intern: Optional[InternStats] = None
    #: Filled in by runs with the invariant sanitizer installed.
    verify: Optional[VerifyStats] = None
    #: Filled in by runs with an offline optimization stage (--opt).
    opt: Optional[OptStats] = None
    #: Filled in by context-sensitive runs (--k-cs > 0).
    ctx: Optional[CtxStats] = None

    @property
    def total_memory_bytes(self) -> int:
        return self.pts_memory_bytes + self.graph_memory_bytes

    def as_dict(self) -> Dict[str, float]:
        data = {
            "propagations": self.propagations,
            "nodes_searched": self.nodes_searched,
            "nodes_collapsed": self.nodes_collapsed,
            "cycles_collapsed": self.cycles_collapsed,
            "edges_added": self.edges_added,
            "lcd_triggers": self.lcd_triggers,
            "hcd_collapses": self.hcd_collapses,
            "iterations": self.iterations,
            "hcd_offline_seconds": self.hcd_offline_seconds,
            "solve_seconds": self.solve_seconds,
            "pts_memory_bytes": self.pts_memory_bytes,
            "graph_memory_bytes": self.graph_memory_bytes,
        }
        if self.parallel is not None:
            for key, value in self.parallel.as_dict().items():
                data[f"parallel_{key}"] = value
        if self.intern is not None:
            for key, value in self.intern.as_dict().items():
                data[f"intern_{key}"] = value
        if self.verify is not None:
            for key, value in self.verify.as_dict().items():
                data[f"verify_{key}"] = value
        if self.opt is not None:
            for key, value in self.opt.as_dict().items():
                data[f"opt_{key}"] = value
        if self.ctx is not None:
            for key, value in self.ctx.as_dict().items():
                data[f"ctx_{key}"] = value
        return data


class BaseSolver:
    """Common solver shell: naming, timing, stats, solution export."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",
        hcd: bool = False,
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        #: The system as handed in — solutions are always exported in its
        #: variable space, whatever ``--k-cs`` / ``--opt`` did to the
        #: constraints.
        self.original_system = system
        self.opt = opt
        self.k_cs = int(k_cs)
        self.preprocess: Optional[PreprocessResult] = None
        self.context: Optional[ContextExpansion] = None
        self.stats = SolverStats()
        if self.k_cs:
            # Context expansion runs before *everything* else in the
            # offline pipeline: HVN/HU and HCD's offline pass analyze the
            # cloned constraint system the solver will actually solve.
            context = expand_contexts(system, self.k_cs)
            self.context = context
            system = context.expanded
            self.stats.ctx = context.stats
        if opt != "none":
            # The offline pipeline stage runs before *everything* —
            # including HCD's offline pass, which should analyze the
            # constraints the solver will actually see.
            pre = preprocess_system(system, opt)
            self.preprocess = pre
            system = pre.reduced
            self.stats.opt = OptStats(
                stage=pre.stage,
                passes=pre.passes,
                vars_merged=pre.merged_count(),
                locations_merged=pre.locations_merged(),
                constraints_deleted=pre.constraints_deleted(),
                offline_seconds=pre.offline_seconds,
            )
        self.system = system
        self.pts_kind = pts
        self.hcd_enabled = hcd
        #: Invariant checks at collapse/propagate boundaries (--sanitize).
        self.sanitizer: Optional[Sanitizer] = Sanitizer(self) if sanitize else None
        self._solution: Optional[PointsToSolution] = None
        self._context_solution: Optional[PointsToSolution] = None
        self.hcd_offline: Optional[HCDOfflineResult] = None
        if hcd:
            self.hcd_offline = hcd_offline_analysis(system)
            self.stats.hcd_offline_seconds = self.hcd_offline.offline_seconds

    def solve(self) -> PointsToSolution:
        """Run the analysis (idempotent) and return the solution.

        When an offline stage substituted variables away, the reduced
        solution is expanded back to the original variable space here —
        every subclass and every consumer sees original-space solutions.
        At ``k_cs > 0`` the clone-space solution is additionally
        projected onto the base variables (per-variable union over its
        context instances); :meth:`context_solution` keeps the
        unprojected form for the certifier.
        """
        if self._solution is None:
            start = time.perf_counter()
            solution = self._run()
            if self.preprocess is not None:
                solution = self.preprocess.expand(solution)
            self._context_solution = solution
            if self.context is not None:
                solution = self.context.project(solution)
            self._solution = solution
            self.stats.solve_seconds = time.perf_counter() - start
            if self.sanitizer is not None:
                self.sanitizer.final_check()
            self._account_memory()
        return self._solution

    def context_solution(self) -> PointsToSolution:
        """The pre-projection (clone-space) solution.

        Identical to :meth:`solve` at ``k_cs == 0``.  At ``k_cs > 0``
        this is the solution of ``self.context.expanded`` — the system a
        certifier must check, since the projected base-space solution
        deliberately violates the original constraints (that violation
        is the precision win).
        """
        self.solve()
        return self._context_solution

    def _run(self) -> PointsToSolution:
        raise NotImplementedError

    def _account_memory(self) -> None:
        """Subclasses fill in ``pts_memory_bytes`` / ``graph_memory_bytes``."""

    @property
    def full_name(self) -> str:
        return f"{self.name}+hcd" if self.hcd_enabled else self.name


class GraphSolver(BaseSolver):
    """Base for the explicit constraint-graph solvers (naive/PKH/LCD/HCD).

    Owns the :class:`ConstraintGraph`, the points-to family, and the
    shared pieces of the worklist algorithms: complex-constraint
    resolution, propagation along edges, cycle collapsing, and the HCD
    pair lookup of Figure 5.
    """

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",
        hcd: bool = False,
        worklist: str = "divided-lrf",
        difference_propagation: bool = False,
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        super().__init__(
            system, pts=pts, hcd=hcd, sanitize=sanitize, opt=opt, k_cs=k_cs
        )
        system = self.system  # the (possibly) offline-reduced system
        self.worklist_strategy = worklist
        #: Difference propagation (Pearce, Kelly & Hankin, SCAM 2003):
        #: offer successors only the pointees they have not seen, except
        #: over newly inserted edges, which carry the full set once.
        self.difference_propagation = difference_propagation
        self.family: PointsToFamily = make_family(pts, system.num_vars)
        #: Fused word-parallel kernel: families whose sets are canonical
        #: bignums (``int``) run batched whole-set diffs instead of the
        #: per-element loops, with propagation steps memoized through the
        #: intern table (union/add/offset memos).
        self._fused = bool(getattr(self.family, "fused_kernel", False))
        #: offset -> bignum mask of locations with max_offset >= offset
        #: (the certifier's ``_offset_mask`` trick), built lazily.
        self._offset_masks: Dict[int, int] = {}
        self.graph = ConstraintGraph(system, self.family)
        #: HCD pair list L, keyed by current representative.
        self._hcd_pairs: Dict[int, List[Tuple[int, int]]] = {}
        #: Pointees already collapsed through a node's pairs (difference
        #: processing, mirroring ConstraintGraph.complex_done).
        self._hcd_done: Dict[int, "SparseBitmap"] = {}
        if self.hcd_offline is not None:
            for var, pairs in self.hcd_offline.pairs.items():
                self._hcd_pairs.setdefault(var, []).extend(pairs)
            # Copy-only offline SCCs collapse before solving starts.
            for group in self.hcd_offline.direct_groups:
                self.collapse_nodes(group)

    # ------------------------------------------------------------------
    # Collapsing
    # ------------------------------------------------------------------

    def collapse_nodes(self, members: Iterable[int], push=None) -> int:
        """Collapse ``members`` into one node, keeping stats and the HCD
        pair table coherent.  Returns the representative.

        ``push`` re-queues the representative when the merge left
        cross-resolution jobs behind (see
        :attr:`ConstraintGraph.pending_complex`); callers inside the
        solving loop must supply it.
        """
        member_list = list(members)
        old_reps = {self.graph.find(m) for m in member_list}
        rep, merged = self.graph.collapse(member_list)
        if merged:
            if self.sanitizer is not None:
                self.sanitizer.after_collapse(rep, member_list, old_reps)
            self.stats.nodes_collapsed += merged
            self.stats.cycles_collapsed += 1
            for old in old_reps:
                if old != rep and old in self._hcd_pairs:
                    self._hcd_pairs.setdefault(rep, []).extend(
                        self._hcd_pairs.pop(old)
                    )
                    # The pair list changed: pointees must be re-examined
                    # against the newly acquired pairs.
                    self._hcd_done.pop(rep, None)
                if old != rep:
                    self._hcd_done.pop(old, None)
            if self.graph.pending_complex[rep]:
                if push is not None:
                    push(rep)
        return rep

    # ------------------------------------------------------------------
    # The Figure 5 check: preemptive collapse via the pair list L
    # ------------------------------------------------------------------

    def hcd_check(self, node: int, push) -> int:
        """If ``(node, a)`` is in L, collapse a's partners with pts(node).

        ``push`` is the worklist-insert callback; returns the (possibly
        new) representative of ``node``.
        """
        pairs = self._hcd_pairs.get(node)
        if not pairs:
            return node
        graph = self.graph
        done = self._hcd_done.get(node)
        if done is None:
            done = self._hcd_done[node] = self.family.make_scratch()
        if self._fused:
            # One word-parallel diff instead of a membership scan.
            fresh_bits = graph.pts_of(node).bits & ~done.bits
            if not fresh_bits:
                return node
            fresh = list(_iter_bits(fresh_bits))
        else:
            fresh = [loc for loc in graph.pts_of(node) if loc not in done]
            if not fresh:
                return node
        for offset, partner in list(pairs):
            targets = []
            for loc in fresh:
                target = graph.offset_target(loc, offset)
                if target is not None:
                    targets.append(target)
            if not targets:
                continue
            before = self.stats.nodes_collapsed
            rep = self.collapse_nodes([partner, *targets], push)
            if self.stats.nodes_collapsed > before:
                # Something actually merged: the representative's state
                # changed, so it must be reprocessed (Figure 5 pushes a).
                self.stats.hcd_collapses += 1
                push(rep)
        node = graph.find(node)
        if self._hcd_pairs.get(node) is pairs:
            # Same pair list: these pointees are fully handled.  (If the
            # collapse merged pair lists, the done-set was dropped and the
            # pointees will be re-examined against the acquired pairs.)
            done = self._hcd_done.get(node)
            if done is None:
                done = self._hcd_done[node] = self.family.make_scratch()
            if self._fused:
                done.bits |= fresh_bits
            else:
                for loc in fresh:
                    done.add(loc)
        return node

    # ------------------------------------------------------------------
    # Complex-constraint resolution (step 1 of the Figure 1 loop body)
    # ------------------------------------------------------------------

    def resolve_complex(self, node: int, push) -> None:
        """Add edges demanded by the complex constraints indexed at ``node``.

        For each pointee ``v`` of ``node``: loads ``dst = *(node+k)`` add
        ``v+k -> dst`` and queue ``v+k``; stores ``*(node+k) = src`` add
        ``src -> v+k`` and queue ``src`` (the new edge's source must
        propagate).
        """
        graph = self.graph
        fused = self._fused
        pending = graph.pending_complex[node]
        if pending:
            graph.pending_complex[node] = []
            for loads, stores, offs, locs in pending:
                if fused:
                    self._apply_complex_fused(loads, stores, offs, locs.bits, push)
                else:
                    self._apply_complex(loads, stores, offs, locs, push)
        loads = graph.loads[node]
        stores = graph.stores[node]
        offs = graph.offs[node]
        if not loads and not stores and not offs:
            return
        done = graph.complex_done[node]
        if fused:
            fresh_bits = graph.pts_of(node).bits & ~done.bits
            if not fresh_bits:
                return
            done.bits |= fresh_bits
            self._apply_complex_fused(loads, stores, offs, fresh_bits, push)
            return
        fresh = [loc for loc in graph.pts_of(node) if loc not in done]
        if not fresh:
            return
        for loc in fresh:
            done.add(loc)
        self._apply_complex(loads, stores, offs, fresh, push)

    def _apply_complex(self, loads, stores, offs, locs, push) -> None:
        """Apply the complex constraints in ``loads``/``stores``/``offs``
        to the pointees ``locs``: add demanded edges, and for the
        offset-copy form feed shifted locations straight into the
        destination's points-to set."""
        graph = self.graph
        find = graph.find
        succ = graph.succ
        max_offset = graph.system.max_offset
        diff_prop = self.difference_propagation
        edges_added = 0
        for dst, offset in loads:
            dst_rep = find(dst)
            for loc in locs:
                if offset:
                    if max_offset[loc] < offset:
                        continue
                    source = find(loc + offset)
                else:
                    source = find(loc)
                if source != dst_rep and succ[source].add(dst_rep):
                    edges_added += 1
                    if diff_prop:
                        graph.fresh_edges[source].append(dst_rep)
                    push(source)
        for src, offset in stores:
            src_rep = find(src)
            for loc in locs:
                if offset:
                    if max_offset[loc] < offset:
                        continue
                    target = find(loc + offset)
                else:
                    target = find(loc)
                if target != src_rep and succ[src_rep].add(target):
                    edges_added += 1
                    if diff_prop:
                        graph.fresh_edges[src_rep].append(target)
                    push(src_rep)
        for dst, offset in offs:
            dst_rep = find(dst)
            dst_pts = graph.pts[dst_rep]
            changed = False
            for loc in locs:
                if max_offset[loc] < offset:
                    continue
                self.stats.propagations += 1
                if dst_pts.add(loc + offset):
                    changed = True
            if changed:
                push(dst_rep)
        self.stats.edges_added += edges_added

    def _offset_mask(self, offset: int) -> int:
        """Bignum of locations whose layout extends ``offset`` slots —
        the certifier's trick: an OFFS/offset-deref step over a whole
        pointee set becomes ``(bits & mask) << offset``."""
        mask = self._offset_masks.get(offset)
        if mask is None:
            if offset == 0:
                mask = -1  # every location is valid at offset 0
            else:
                mask = 0
                for loc, max_off in enumerate(self.system.max_offset):
                    if max_off >= offset:
                        mask |= 1 << loc
            self._offset_masks[offset] = mask
        return mask

    def _apply_complex_fused(self, loads, stores, offs, locs_bits, push) -> None:
        """Word-parallel `_apply_complex`: pointees arrive as one bignum,
        offset filtering is a mask, the offset-copy form is one memoized
        masked shift, and loads fold the dereferenced sets through the
        family's deref union-cache into a single whole-set union."""
        graph = self.graph
        find = graph.uf.find
        succ = graph.succ
        pts_list = graph.pts
        fresh_edges = graph.fresh_edges
        family = self.family
        table = family.table
        diff_prop = self.difference_propagation
        edges_added = 0
        for dst, offset in loads:
            dst_rep = find(dst)
            bits = locs_bits & self._offset_mask(offset) if offset else locs_bits
            fresh_sources = []
            while bits:
                low = bits & -bits
                bits ^= low
                source = find(low.bit_length() - 1 + offset)
                if source != dst_rep and succ[source].add(dst_rep):
                    edges_added += 1
                    if diff_prop:
                        fresh_edges[source].append(dst_rep)
                    push(source)
                    fresh_sources.append(source)
            if fresh_sources:
                # Certifier-style deref union-cache: accumulate the union
                # of the dereferenced sets per constraint and apply it to
                # the destination eagerly as one whole-set union.  The
                # inserted edges keep completeness; this only accelerates
                # convergence toward the same least model.
                acc_bits, acc_id = family.deref_union(
                    ("l", dst, offset),
                    (
                        (pts_list[s].bits, pts_list[s].node_id)
                        for s in fresh_sources
                    ),
                )
                self.stats.propagations += 1
                if pts_list[dst_rep].ior_bits_and_test(acc_bits, acc_id):
                    push(dst_rep)
        for src, offset in stores:
            src_rep = find(src)
            bits = locs_bits & self._offset_mask(offset) if offset else locs_bits
            while bits:
                low = bits & -bits
                bits ^= low
                target = find(low.bit_length() - 1 + offset)
                if target != src_rep and succ[src_rep].add(target):
                    edges_added += 1
                    if diff_prop:
                        fresh_edges[src_rep].append(target)
                    push(src_rep)
        if offs:
            locs_canon, locs_id = table.intern(locs_bits)
            for dst, offset in offs:
                shifted_bits, shifted_id = table.shifted(
                    locs_canon, locs_id, self._offset_mask(offset), offset
                )
                if not shifted_bits:
                    continue
                dst_rep = find(dst)
                self.stats.propagations += 1
                if pts_list[dst_rep].ior_bits_and_test(shifted_bits, shifted_id):
                    push(dst_rep)
        self.stats.edges_added += edges_added

    # ------------------------------------------------------------------
    # Propagation (step 2 of the Figure 1 loop body)
    # ------------------------------------------------------------------

    def propagate(self, node: int, push) -> None:
        """Propagate pts(node) to every successor; queue the changed ones."""
        graph = self.graph
        if self.sanitizer is not None:
            self.sanitizer.check_monotone(node)
            for succ in list(graph.successors(node)):
                self.sanitizer.check_monotone(succ)
        if self._fused:
            self._propagate_fused(node, push)
            return
        pts = graph.pts_of(node)
        # Canonical families make equality O(1): when source and target
        # already hold the same node id the union is skipped entirely —
        # cheap partial cycle suppression even without LCD/HCD.
        fast_eq = self.family.constant_time_equality
        if not self.difference_propagation:
            for succ in list(graph.successors(node)):
                self.stats.propagations += 1
                target = graph.pts_of(succ)
                if fast_eq and target.same_as(pts):
                    continue
                if target.ior_and_test(pts):
                    push(succ)
            return

        # Difference propagation: newly inserted edges get the full set
        # once; everything else receives only the unseen delta.
        node = graph.find(node)
        fresh_edges = graph.fresh_edges[node]
        if fresh_edges:
            graph.fresh_edges[node] = []
            offered = set()
            for raw in fresh_edges:
                succ = graph.find(raw)
                if succ == node or succ in offered:
                    continue
                offered.add(succ)
                self.stats.propagations += 1
                if graph.pts_of(succ).ior_and_test(pts):
                    push(succ)
        prev = graph.prev_pts[node]
        delta = [loc for loc in pts if loc not in prev]
        if not delta:
            return
        for loc in delta:
            prev.add(loc)
        delta_set = self.family.make_from(delta)
        for succ in list(graph.successors(node)):
            self.stats.propagations += 1
            if graph.pts_of(succ).ior_and_test(delta_set):
                push(succ)

    def _propagate_fused(self, node: int, push) -> None:
        """Word-parallel propagate: one tight loop over raw successor
        ids with the union-find hoisted, unions memoized by canonical id
        through the intern table, and the difference-mode delta computed
        as a single masked bignum diff."""
        graph = self.graph
        uf_find = graph.uf.find
        pts_list = graph.pts
        stats = self.stats
        node = uf_find(node)
        pts = pts_list[node]
        if not self.difference_propagation:
            pts_bits = pts.bits
            pts_id = pts.node_id
            union = self.family.table.union
            for raw in list(graph.succ[node]):
                succ = uf_find(raw)
                if succ == node:
                    continue
                stats.propagations += 1
                target = pts_list[succ]
                target_id = target.node_id
                if target_id == pts_id:
                    continue
                merged_bits, merged_id = union(
                    target.bits, target_id, pts_bits, pts_id
                )
                if merged_id != target_id:
                    target.bits = merged_bits
                    target.node_id = merged_id
                    push(succ)
            return

        # Difference propagation, fused: fresh edges carry the full set
        # once; the delta versus prev is one `pts & ~prev` bignum diff.
        fresh_edges = graph.fresh_edges[node]
        if fresh_edges:
            graph.fresh_edges[node] = []
            offered = set()
            for raw in fresh_edges:
                succ = uf_find(raw)
                if succ == node or succ in offered:
                    continue
                offered.add(succ)
                stats.propagations += 1
                if pts_list[succ].ior_and_test(pts):
                    push(succ)
        prev = graph.prev_pts[node]
        delta_bits = pts.bits & ~prev.bits
        if not delta_bits:
            return
        prev.bits |= delta_bits
        delta_canon, delta_id = self.family.table.intern(delta_bits)
        for raw in list(graph.succ[node]):
            succ = uf_find(raw)
            if succ == node:
                continue
            stats.propagations += 1
            if pts_list[succ].ior_bits_and_test(delta_canon, delta_id):
                push(succ)

    # ------------------------------------------------------------------
    # Solution export and accounting
    # ------------------------------------------------------------------

    def _export_solution(self) -> PointsToSolution:
        graph = self.graph
        num_vars = self.system.num_vars
        if self._fused:
            # Canonical bignums: decode each distinct set value once and
            # share the (read-only) location list across the variables
            # holding it — converged solutions are heavily duplicated.
            decoded: Dict[int, List[int]] = {}
            mapping = {}
            for var in range(num_vars):
                bits = graph.pts_of(var).bits
                locs = decoded.get(id(bits))
                if locs is None:
                    locs = decoded[id(bits)] = list(_iter_bits(bits))
                mapping[var] = locs
        else:
            mapping = {var: list(graph.pts_of(var)) for var in range(num_vars)}
        # Hand the solver's native sets to the solution so alias/checker
        # queries run on the representation's own AND (merged variables
        # share one set object, which is fine for read-only queries).
        backing = {var: graph.pts_of(var) for var in range(num_vars)}
        return PointsToSolution(
            mapping, num_vars, self.system.names,
            num_locs=num_vars, backing=backing,
        )

    def _account_memory(self) -> None:
        self.stats.pts_memory_bytes = self.family.memory_bytes()
        self.stats.graph_memory_bytes = self.graph.graph_memory_bytes()
        self.stats.intern = self.family.intern_stats()
