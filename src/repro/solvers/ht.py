"""The Heintze & Tardieu solver (PLDI 2001), field-insensitive.

HT never materializes the transitive closure.  The constraint graph is
kept in *pre-transitive* form — only edges from simple constraints plus
the edges the complex constraints demand — and a variable's points-to set
is computed on demand by a **backward reachability query**::

    pts(n) = base(n)  U  union of pts(p) for every edge p -> n

Queries are memoized per *round*; a round walks every complex constraint,
queries the dereferenced variable, and adds the demanded edges.  When a
round adds nothing, the memo table reflects the complete graph and the
analysis is done.  The redundancy the paper describes ("it is impossible
to know whether a reachability query will encounter a newly-added
inclusion edge ... until after it completes") is exactly these re-queries.

Cycle detection comes for free: the query DFS is a Tarjan pass, and every
SCC it closes is collapsed before its points-to set is computed — this is
why HT searches only "the subset of the graph necessary for resolving
indirect constraints" (Section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.datastructs.union_find import UnionFind
from repro.points_to.interface import PointsToSet, make_family
from repro.solvers.base import BaseSolver


class HTSolver(BaseSolver):
    """Pre-transitive graph + cached reachability queries."""

    name = "ht"

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",
        hcd: bool = False,
        worklist: str = "divided-lrf",  # accepted for interface parity; unused
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        super().__init__(
            system, pts=pts, hcd=hcd, sanitize=sanitize, opt=opt, k_cs=k_cs
        )
        system = self.system  # the (possibly) offline-reduced system
        self.family = make_family(pts, system.num_vars)
        n = system.num_vars
        self.uf = UnionFind(n)
        #: preds[a] holds b  <=>  edge b -> a  <=>  pts(a) >= pts(b)
        self.preds: List[SparseBitmap] = [SparseBitmap() for _ in range(n)]
        self.base: List[PointsToSet] = [self.family.make() for _ in range(n)]
        self._cache: Dict[int, PointsToSet] = {}
        self._loads: List[Tuple[int, int, int]] = []  # (dst, ptr, offset)
        self._stores: List[Tuple[int, int, int]] = []  # (src, ptr, offset)
        self._offs: List[Tuple[int, int, int]] = []  # (dst, src, offset)
        for constraint in system.constraints:
            kind = constraint.kind
            if kind is ConstraintKind.BASE:
                self.base[constraint.dst].add(constraint.src)
            elif kind is ConstraintKind.COPY:
                if constraint.src != constraint.dst:
                    self.preds[constraint.dst].add(constraint.src)
            elif kind is ConstraintKind.LOAD:
                self._loads.append((constraint.dst, constraint.src, constraint.offset))
            elif kind is ConstraintKind.STORE:
                self._stores.append((constraint.src, constraint.dst, constraint.offset))
            else:  # OFFS: resolved per round like the other complex forms
                self._offs.append((constraint.dst, constraint.src, constraint.offset))
        self._changed = False
        if self.hcd_offline is not None:
            for group in self.hcd_offline.direct_groups:
                self._collapse(group)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def _run(self) -> PointsToSolution:
        hcd_pairs = self.hcd_offline.pairs if self.hcd_offline is not None else {}

        while True:
            self.stats.iterations += 1
            self._changed = False
            self._cache.clear()

            for dst, ptr, offset in self._loads:
                pointees = self._pointees_of(ptr, hcd_pairs)
                target = self.uf.find(dst)
                for loc in pointees:
                    source = self._offset_target(loc, offset)
                    if source is None:
                        continue
                    if self.preds[target].add(self.uf.find(source)):
                        self.stats.edges_added += 1
                        self._changed = True

            for src, ptr, offset in self._stores:
                pointees = self._pointees_of(ptr, hcd_pairs)
                source = self.uf.find(src)
                for loc in pointees:
                    target = self._offset_target(loc, offset)
                    if target is None:
                        continue
                    if self.preds[self.uf.find(target)].add(source):
                        self.stats.edges_added += 1
                        self._changed = True

            for dst, src, offset in self._offs:
                # dst = src + k: shifted pointees enter dst as base facts.
                pointees = self._pointees_of(src, hcd_pairs)
                dst_base = self.base[self.uf.find(dst)]
                for loc in pointees:
                    target = self._offset_target(loc, offset)
                    if target is None:
                        continue
                    if dst_base.add(target):
                        self._changed = True

            if not self._changed:
                break

        # The last round changed nothing, so the memo table is consistent
        # with the final graph; materialize the remaining variables.
        mapping = {
            var: list(self._query(var)) for var in range(self.system.num_vars)
        }
        return PointsToSolution(
            mapping, self.system.num_vars, self.system.names,
            num_locs=self.system.num_vars,
        )

    def _pointees_of(self, ptr: int, hcd_pairs) -> List[int]:
        """Query pts(ptr), applying any HCD pairs registered for ``ptr``."""
        pointees = list(self._query(ptr))
        pairs = hcd_pairs.get(ptr)
        if pairs and pointees:
            for offset, partner in pairs:
                members = [partner]
                for loc in pointees:
                    target = self._offset_target(loc, offset)
                    if target is not None:
                        members.append(target)
                if len(members) > 1:
                    before = self.stats.nodes_collapsed
                    self._collapse(members)
                    if self.stats.nodes_collapsed > before:
                        self.stats.hcd_collapses += 1
                        self._changed = True
        return pointees

    def _offset_target(self, loc: int, offset: int) -> Optional[int]:
        if offset == 0:
            return loc
        if self.system.max_offset[loc] >= offset:
            return loc + offset
        return None

    # ------------------------------------------------------------------
    # Collapsing
    # ------------------------------------------------------------------

    def _collapse(self, members: List[int]) -> int:
        uf = self.uf
        rep = uf.find(members[0])
        merged_any = False
        for member in members[1:]:
            member = uf.find(member)
            rep = uf.find(rep)
            if member == rep:
                continue
            uf.union_into(rep, member)
            merged_any = True
            self.stats.nodes_collapsed += 1
            self.preds[rep].ior(self.preds[member])
            self.base[rep].ior_and_test(self.base[member])
            self.preds[member] = SparseBitmap()
            self.base[member] = self.family.make()
            # Mid-round memo entries for the losers are no longer keyed
            # correctly; drop them (the representative recomputes lazily).
            self._cache.pop(member, None)
        if merged_any:
            self.stats.cycles_collapsed += 1
            self._cache.pop(uf.find(rep), None)
        return uf.find(rep)

    # ------------------------------------------------------------------
    # The reachability query: Tarjan DFS over pred edges, memoized
    # ------------------------------------------------------------------

    def _query(self, node: int) -> PointsToSet:
        uf = self.uf
        root = uf.find(node)
        cached = self._cache.get(root)
        if cached is not None:
            return cached

        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        scc_stack: List[int] = []
        counter = 0

        def normalized_preds(n: int) -> List[int]:
            return [uf.find(p) for p in self.preds[n]]

        work = [(root, iter(normalized_preds(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        self.stats.nodes_searched += 1

        while work:
            current, pred_iter = work[-1]
            advanced = False
            for pred in pred_iter:
                pred = uf.find(pred)
                if pred in self._cache:
                    continue  # already resolved this round
                if pred not in index:
                    index[pred] = lowlink[pred] = counter
                    counter += 1
                    scc_stack.append(pred)
                    on_stack.add(pred)
                    self.stats.nodes_searched += 1
                    work.append((pred, iter(normalized_preds(pred))))
                    advanced = True
                    break
                if pred in on_stack and index[pred] < lowlink[current]:
                    lowlink[current] = index[pred]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[current] < lowlink[parent]:
                    lowlink[parent] = lowlink[current]
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                self._finish_component(component)

        return self._cache[uf.find(root)]

    def _finish_component(self, component: List[int]) -> None:
        """Collapse a completed SCC and compute its points-to set."""
        uf = self.uf
        if len(component) >= 2:
            rep = self._collapse(component)
        else:
            rep = uf.find(component[0])
        member_set = {uf.find(m) for m in component}
        member_set.add(rep)
        pts = self.base[rep].copy()
        # External contributions, de-duplicated by representative.  Every
        # external pred finished before this SCC (Tarjan invariant), so its
        # points-to set is already memoized.
        seen_preds: Set[int] = set()
        for raw in list(self.preds[rep]):
            pred = uf.find(raw)
            if pred in member_set or pred in seen_preds:
                continue
            seen_preds.add(pred)
            cached = self._cache.get(pred)
            if cached is None:
                raise AssertionError(
                    f"HT query order violated: pred {pred} of {rep} not memoized"
                )
            self.stats.propagations += 1
            pts.ior_and_test(cached)
        self._cache[rep] = pts

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account_memory(self) -> None:
        self.stats.pts_memory_bytes = self.family.memory_bytes()
        self.stats.graph_memory_bytes = sum(
            self.preds[node].memory_bytes()
            for node in range(self.system.num_vars)
            if self.uf.find(node) == node
        )
        self.stats.intern = self.family.intern_stats()
