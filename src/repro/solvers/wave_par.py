"""Parallel wave propagation (``wave-par``).

Andersen-style difference propagation decomposes naturally once the
constraint graph is condensed: after SCC collapsing the graph is a DAG,
and a longest-path layering (:func:`repro.graph.topo_order.topological_levels`)
puts mutually independent nodes in the same *level*.  Within a level no
node can influence another, so the expensive part of a wave — unioning
each source's difference set into its successors — fans out across a
worker pool with a barrier per level.  Pavlogiannis ("The Fine-Grained
and Parallel Complexity of Andersen's Pointer Analysis") shows the
analysis admits exactly this kind of parallelism.

Scheduling is *owner-computes* over successors: each task owns a chunk
of the level's affected successors and computes, for each one, the union
of its current points-to set with every incoming difference set, in a
fixed ascending source order.  The coordinator applies results at the
level barrier in ascending successor order.  Because set union is
order-insensitive and the schedule never depends on worker timing, the
solution is bit-identical to :class:`~repro.solvers.wave.WaveSolver`
at any worker count.

Sets cross the process boundary as the flat ``array("Q")`` encoding of
:mod:`repro.datastructs.sparse_bitmap` — one shared buffer per level for
the difference sets, addressed by offset, so a source with successors in
several chunks is encoded once.  With ``workers=1`` (or a level too
small to amortize dispatch, or a non-bitmap points-to family) the same
chunk schedule runs sequentially in-process on the live bitmaps.
"""

from __future__ import annotations

import multiprocessing
import time
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.solution import PointsToSolution
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.graph.topo_order import topological_levels
from repro.solvers.base import ParallelStats
from repro.solvers.wave import WaveSolver

#: One merge task: the level's shared difference-set buffer plus the
#: chunk's jobs, each ``(successor, encoded pts, delta record offsets)``.
_MergeTask = Tuple["array[int]", List[Tuple[int, "array[int]", Tuple[int, ...]]]]


def _merge_chunk(task: _MergeTask):
    """Pool worker: union encoded difference sets into encoded targets.

    Pure function of its payload — workers hold no solver state, which
    keeps fork and spawn start methods equivalent.  Returns one entry per
    job: the re-encoded merged set when it changed, else ``None``.
    """
    delta_buf, jobs = task
    started = time.perf_counter()
    results: List[Tuple[int, Optional["array[int]"]]] = []
    for succ, pts_words, delta_offsets in jobs:
        bitmap, _ = SparseBitmap.decode(pts_words)
        changed = False
        for offset in delta_offsets:
            if bitmap.ior_encoded(delta_buf, offset):
                changed = True
        if changed:
            out: "array[int]" = array("Q")
            bitmap.encode_into(out)
            results.append((succ, out))
        else:
            results.append((succ, None))
    return results, time.perf_counter() - started


class WaveParallelSolver(WaveSolver):
    """Level-scheduled wave propagation with a per-level worker fan-out."""

    name = "wave-par"

    #: Minimum estimated merge work (bitmap blocks touched) in a level
    #: before it is worth shipping to the pool; smaller levels run the
    #: same chunk schedule inline.  Tests set this to 0 to force dispatch.
    parallel_threshold = 1024

    def __init__(self, *args, workers: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.workers = max(1, int(workers))
        self.stats.parallel = ParallelStats(workers=self.workers)
        self._pool = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _run(self) -> PointsToSolution:
        try:
            return super()._run()
        finally:
            self._close_pool()

    def _get_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # The leveled wave
    # ------------------------------------------------------------------

    def _wave(self, order: List[int]) -> bool:
        """One wave, scheduled as topological levels with barriers.

        Equivalent to the sequential wave: levels run in order, and a
        node's difference set is computed only after every earlier level
        merged into it (all edges point to strictly later levels).
        """
        graph = self.graph
        par = self.stats.parallel
        par.waves += 1
        changed = False
        for level in topological_levels(order, graph.successors):
            par.levels += 1
            if self._process_level(level):
                changed = True
        return changed

    def _process_level(self, level: List[int]) -> bool:
        graph = self.graph
        changed = False
        if self.sanitizer is not None:
            for node in level:
                self.sanitizer.check_monotone(node)

        # Fresh edges (inserted by the last batch-resolution phase) carry
        # the full set once, exactly as in the sequential wave.  Their
        # targets are ordinary graph edges, hence in strictly later
        # levels — this never mutates the level being processed.
        for node in level:
            fresh_edges = graph.fresh_edges[node]
            if not fresh_edges:
                continue
            graph.fresh_edges[node] = []
            pts = graph.pts_of(node)
            offered = set()
            for raw in fresh_edges:
                succ = graph.find(raw)
                if succ == node or succ in offered:
                    continue
                offered.add(succ)
                self.stats.propagations += 1
                if graph.pts_of(succ).ior_and_test(pts):
                    changed = True

        # Difference sets for the whole level, then one merge pass over
        # the affected successors (sources ascending per successor).
        bitmap_family = self.pts_kind == "bitmap"
        deltas: Dict[int, object] = {}
        incoming: Dict[int, List[int]] = {}
        for node in level:
            prev = graph.prev_pts[node]
            pts = graph.pts[node]
            if bitmap_family:
                delta = pts.bits.copy()
                delta.difference_update(prev)
                if not delta:
                    continue
                prev.ior(delta)
            elif self._fused:
                # Fused kernel: the difference is one bignum diff and the
                # delta set is born whole from it (interned, so the merge
                # pass below runs on memoized whole-set unions).
                delta_bits = pts.bits & ~prev.bits
                if not delta_bits:
                    continue
                prev.bits |= delta_bits
                delta = self.family.make_from_bits(delta_bits)
            else:
                fresh = [loc for loc in pts if loc not in prev]
                if not fresh:
                    continue
                for loc in fresh:
                    prev.add(loc)
                delta = self.family.make_from(fresh)
            successors = sorted(set(graph.successors(node)))
            if not successors:
                continue
            deltas[node] = delta
            for succ in successors:
                incoming.setdefault(succ, []).append(node)

        if incoming and self._merge_level(incoming, deltas, bitmap_family):
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Level merge: chunk, dispatch or run inline, apply at the barrier
    # ------------------------------------------------------------------

    def _merge_level(
        self,
        incoming: Dict[int, List[int]],
        deltas: Dict[int, object],
        bitmap_family: bool,
    ) -> bool:
        graph = self.graph
        par = self.stats.parallel
        targets = sorted(incoming)
        par.deltas_merged += sum(len(incoming[succ]) for succ in targets)
        self.stats.propagations += sum(len(incoming[succ]) for succ in targets)

        if bitmap_family:
            costs = [
                graph.pts[succ].bits.block_count
                + sum(deltas[src].block_count for src in incoming[succ])
                for succ in targets
            ]
        else:
            costs = [1 + len(incoming[succ]) for succ in targets]
        chunks = _partition(targets, costs, self.workers)

        use_pool = (
            self.workers > 1
            and bitmap_family
            and len(chunks) > 1
            and sum(costs) >= self.parallel_threshold
        )
        if not use_pool:
            changed = False
            par.tasks_inline += len(chunks)
            for chunk in chunks:
                for succ in chunk:
                    target = graph.pts[succ]
                    if bitmap_family:
                        bits = target.bits
                        for src in incoming[succ]:
                            if bits.ior_and_test(deltas[src]):
                                changed = True
                    else:
                        for src in incoming[succ]:
                            if target.ior_and_test(deltas[src]):
                                changed = True
            return changed

        # Encode each difference set once into the level's shared buffer.
        delta_buf: "array[int]" = array("Q")
        delta_offsets = {
            src: delta.encode_into(delta_buf) for src, delta in sorted(deltas.items())
        }
        tasks: List[_MergeTask] = []
        for chunk in chunks:
            jobs = []
            for succ in chunk:
                pts_words: "array[int]" = array("Q")
                graph.pts[succ].bits.encode_into(pts_words)
                jobs.append(
                    (succ, pts_words, tuple(delta_offsets[src] for src in incoming[succ]))
                )
            tasks.append((delta_buf, jobs))
        par.tasks_dispatched += len(tasks)

        changed = False
        for job_results, elapsed in self._get_pool().map(_merge_chunk, tasks):
            par.worker_seconds += elapsed
            for succ, words in job_results:
                if words is None:
                    continue
                merged, _ = SparseBitmap.decode(words)
                graph.pts[succ].bits = merged
                changed = True
        return changed


def _partition(
    targets: Sequence[int], costs: Sequence[int], chunk_count: int
) -> List[List[int]]:
    """Split ``targets`` into at most ``chunk_count`` contiguous chunks of
    roughly equal total cost (deterministic: depends only on inputs)."""
    chunk_count = min(chunk_count, len(targets))
    if chunk_count <= 1:
        return [list(targets)] if targets else []
    total = sum(costs)
    chunks: List[List[int]] = []
    current: List[int] = []
    accumulated = 0
    spent = 0
    for target, cost in zip(targets, costs):
        current.append(target)
        accumulated += cost
        remaining_chunks = chunk_count - len(chunks)
        if (
            accumulated * remaining_chunks >= total - spent
            and len(chunks) < chunk_count - 1
        ):
            chunks.append(current)
            current = []
            spent += accumulated
            accumulated = 0
    if current:
        chunks.append(current)
    return chunks
