"""The Berndl, Lhoták, Qian, Hendren & Umanee solver (PLDI 2003).

The entire analysis lives in BDD-land: the points-to relation ``P(x, o)``,
the constraint-graph edges ``E(x, y)`` and the complex-constraint tables
are all relations over interleaved finite domains, and one iteration is a
handful of relational products — propagation is performed "simultaneously
across all the edges using BDD operations", which is why BLQ needs no
cycle detection and why its memory footprint is a near-constant node pool.

This implementation is field-insensitive, handles indirect calls (unlike
the original, which relied on a pre-computed call graph), and uses the
*incrementalization* optimization of Berndl et al. Section 4.2: after the
first pass, only newly discovered points-to facts (``delta``) flow across
edges, and newly added edges ship the existing facts exactly once.

Composed with HCD (``blq+hcd``), the offline pair list drives explicit
variable unification: merged rows of ``P``/``E`` and the constraint tables
are rewritten onto the representative.  As the paper observes, collapsing
still costs real BDD work here, so HCD helps BLQ far less than the
graph-based solvers (≈1.1x).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.solution import PointsToSolution
from repro.bdd.domain import Domain, DomainAllocator
from repro.bdd.manager import FALSE, BDDManager
from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.datastructs.union_find import UnionFind
from repro.solvers.base import BaseSolver


class BLQSolver(BaseSolver):
    """BDD-relational inclusion constraint solver."""

    name = "blq"

    #: Modelled bytes per BDD node, matching the BDD points-to family.
    BYTES_PER_NODE = 24

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bdd",  # accepted for interface parity; always BDD-based
        hcd: bool = False,
        worklist: str = "divided-lrf",  # accepted for interface parity; unused
        interleave: bool = True,
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        super().__init__(
            system, pts=pts, hcd=hcd, sanitize=sanitize, opt=opt, k_cs=k_cs
        )
        system = self.system  # the (possibly) offline-reduced system
        n = max(system.num_vars, 1)
        self._alloc = DomainAllocator(
            [("src", n), ("dst", n), ("obj", n)], interleave=interleave
        )
        self.manager: BDDManager = self._alloc.manager
        self.src: Domain = self._alloc["src"]
        self.dst: Domain = self._alloc["dst"]
        self.obj: Domain = self._alloc["obj"]
        self._src_levels = list(self.src.levels)
        self._dst_levels = list(self.dst.levels)
        self._obj_levels = list(self.obj.levels)
        self._dst_to_src = self.dst.replace_map(self.src)
        self._obj_to_src = self.obj.replace_map(self.src)
        self._obj_to_dst = self.obj.replace_map(self.dst)
        self._src_to_obj = self.src.replace_map(self.obj)
        self.uf = UnionFind(system.num_vars)

        self.points_to = FALSE  # P(src, obj)
        self.edges = FALSE  # E(src, dst)
        #: offset -> load relation  {(p, a) : a = *(p+k)}  over (src, dst)
        self._load_rel: Dict[int, int] = {}
        #: offset -> store relation {(p, b) : *(p+k) = b}  over (src, dst)
        self._store_rel: Dict[int, int] = {}
        #: offset -> offset-copy relation {(b, a) : a = b + k} over (src, dst)
        self._offs_rel: Dict[int, int] = {}
        self._build_relations(system)
        #: offset -> {(v, v+k)} over (obj, src) / (obj, dst), lazily built
        self._off_src: Dict[int, int] = {}
        self._off_dst: Dict[int, int] = {}
        #: every variable ever merged away by HCD unification; freshly
        #: derived edge rows must be renamed onto the representatives.
        self._merged_vars: Set[int] = set()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_relations(self, system: ConstraintSystem) -> None:
        manager = self.manager
        for constraint in system.constraints:
            kind = constraint.kind
            if kind is ConstraintKind.BASE:
                row = manager.apply_and(
                    self.src.encode(constraint.dst), self.obj.encode(constraint.src)
                )
                self.points_to = manager.apply_or(self.points_to, row)
            elif kind is ConstraintKind.COPY:
                if constraint.src == constraint.dst:
                    continue
                row = manager.apply_and(
                    self.src.encode(constraint.src), self.dst.encode(constraint.dst)
                )
                self.edges = manager.apply_or(self.edges, row)
            elif kind is ConstraintKind.LOAD:
                row = manager.apply_and(
                    self.src.encode(constraint.src), self.dst.encode(constraint.dst)
                )
                rel = self._load_rel.get(constraint.offset, FALSE)
                self._load_rel[constraint.offset] = manager.apply_or(rel, row)
            elif kind is ConstraintKind.STORE:
                row = manager.apply_and(
                    self.src.encode(constraint.dst), self.dst.encode(constraint.src)
                )
                rel = self._store_rel.get(constraint.offset, FALSE)
                self._store_rel[constraint.offset] = manager.apply_or(rel, row)
            else:  # OFFS: dst = src + k, relation {(src, dst)} per offset
                row = manager.apply_and(
                    self.src.encode(constraint.src), self.dst.encode(constraint.dst)
                )
                rel = self._offs_rel.get(constraint.offset, FALSE)
                self._offs_rel[constraint.offset] = manager.apply_or(rel, row)

    def _offset_relation(self, offset: int, onto_src: bool) -> int:
        """The relation {(v, v+offset)} over (obj, src|dst), memoized."""
        cache = self._off_src if onto_src else self._off_dst
        rel = cache.get(offset)
        if rel is None:
            manager = self.manager
            target = self.src if onto_src else self.dst
            rel = FALSE
            for loc, max_off in enumerate(self.system.max_offset):
                if max_off >= offset:
                    row = manager.apply_and(
                        self.obj.encode(loc), target.encode(loc + offset)
                    )
                    rel = manager.apply_or(rel, row)
            cache[offset] = rel
        return rel

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def _run(self) -> PointsToSolution:
        manager = self.manager
        delta = self.points_to

        while True:
            self.stats.iterations += 1
            self._propagate_to_fixpoint(delta)
            delta = FALSE

            if self.hcd_enabled and self._apply_hcd_pairs():
                # Unification moved rows onto representatives; their merged
                # facts must flow along the representatives' edges, so the
                # next round re-propagates the full relation.
                delta = self.points_to

            # Offset copies contribute points-to facts directly.
            new_facts = manager.apply_diff(self._resolve_offs(), self.points_to)
            if new_facts != FALSE:
                self.points_to = manager.apply_or(self.points_to, new_facts)
                delta = manager.apply_or(delta, new_facts)

            new_edges = self._normalize_rows(self._resolve_complex())
            new_edges = manager.apply_diff(new_edges, self.edges)
            if new_edges == FALSE and delta == FALSE:
                break
            if new_edges != FALSE:
                self.edges = manager.apply_or(self.edges, new_edges)
                # Ship the existing facts across the new edges exactly once
                # (the incrementalization optimization).
                shipped = self._flow(new_edges, self.points_to)
                fresh = manager.apply_diff(shipped, self.points_to)
                self.points_to = manager.apply_or(self.points_to, fresh)
                delta = manager.apply_or(delta, fresh)

        return self._export_solution()

    def _propagate_to_fixpoint(self, delta: int) -> None:
        """Semi-naive closure: flow only new facts until none appear."""
        manager = self.manager
        while delta != FALSE:
            self.stats.propagations += 1
            flowed = self._flow(self.edges, delta)
            fresh = manager.apply_diff(flowed, self.points_to)
            self.points_to = manager.apply_or(self.points_to, fresh)
            delta = fresh

    def _flow(self, edges: int, facts: int) -> int:
        """One step of ``P(y,o) |= E(x,y) and P(x,o)``, result over (src,obj)."""
        manager = self.manager
        moved = manager.relprod(edges, facts, self._src_levels)  # (dst, obj)
        return manager.replace(moved, self._dst_to_src)

    def _resolve_complex(self) -> int:
        """Edges demanded by the load/store tables against current P."""
        manager = self.manager
        result = FALSE
        for offset, rel in self._load_rel.items():
            # a = *(p+k):  edge (v+k) -> a  for  (p,a) in L, (p,v) in P.
            joined = manager.relprod(rel, self.points_to, self._src_levels)
            # joined over (dst=a, obj=v)
            if offset == 0:
                new = manager.replace(joined, self._obj_to_src)  # (src=v, dst=a)
            else:
                off = self._offset_relation(offset, onto_src=True)
                new = manager.relprod(joined, off, self._obj_levels)  # (src, dst)
            result = manager.apply_or(result, new)
        for offset, rel in self._store_rel.items():
            # *(p+k) = b: edge b -> (v+k)  for  (p,b) in S, (p,v) in P.
            joined = manager.relprod(rel, self.points_to, self._src_levels)
            # joined over (dst=b, obj=v); move b into the src column first.
            moved = manager.replace(joined, self._dst_to_src)  # (src=b, obj=v)
            if offset == 0:
                new = manager.replace(moved, self._obj_to_dst)  # (src=b, dst=v)
            else:
                off = self._offset_relation(offset, onto_src=False)
                new = manager.relprod(moved, off, self._obj_levels)
            result = manager.apply_or(result, new)
        return result

    def _resolve_offs(self) -> int:
        """Points-to rows demanded by the offset-copy (GEP) relations.

        For ``a = b + k``: ``P(a, v+k)`` for every ``(b, v)`` in P with a
        valid shift.  Computed as two relprods and two order-preserving
        renames per offset.
        """
        manager = self.manager
        result = FALSE
        for offset, rel in self._offs_rel.items():
            # rel over (src=b, dst=a); join with P on src.
            joined = manager.relprod(rel, self.points_to, self._src_levels)
            # joined over (dst=a, obj=v); shift v by the offset relation
            # {(v, v+k)} over (obj, src): result (dst=a, src=v+k).
            off = self._offset_relation(offset, onto_src=True)
            shifted = manager.relprod(joined, off, self._obj_levels)
            # Move v+k into the obj column, then a into the src column.
            shifted = manager.replace(shifted, self._src_to_obj)
            rows = manager.replace(shifted, self._dst_to_src)
            result = manager.apply_or(result, rows)
        return result

    # ------------------------------------------------------------------
    # HCD composition: explicit unification in BDD-land
    # ------------------------------------------------------------------

    def _apply_hcd_pairs(self) -> bool:
        assert self.hcd_offline is not None
        changed = False
        groups: List[List[int]] = list(self.hcd_offline.direct_groups)
        for var, pairs in self.hcd_offline.pairs.items():
            pointees = self._pts_values(var)
            if not pointees:
                continue
            for offset, partner in pairs:
                members = [partner]
                for loc in pointees:
                    if offset == 0:
                        members.append(loc)
                    elif self.system.max_offset[loc] >= offset:
                        members.append(loc + offset)
                if len(members) > 1:
                    groups.append(members)
        for group in groups:
            if self._unify(group):
                changed = True
        return changed

    def _unify(self, members: List[int]) -> bool:
        uf = self.uf
        rep = uf.find(members[0])
        losers: Set[int] = set()
        for member in members[1:]:
            member = uf.find(member)
            rep = uf.find(rep)
            if member == rep:
                continue
            uf.union_into(rep, member)
            losers.add(member)
            self.stats.nodes_collapsed += 1
        if not losers:
            return False
        self.stats.hcd_collapses += 1
        rep = uf.find(rep)
        manager = self.manager
        src_losers = self.src.set_of(losers)
        dst_losers = self.dst.set_of(losers)
        src_rep = self.src.encode(rep)
        dst_rep = self.dst.encode(rep)

        def rewrite_src(rel: int) -> int:
            hit = manager.apply_and(rel, src_losers)
            if hit == FALSE:
                return rel
            rest = manager.apply_diff(rel, src_losers)
            moved = manager.apply_and(manager.exist(hit, self._src_levels), src_rep)
            return manager.apply_or(rest, moved)

        def rewrite_dst(rel: int) -> int:
            hit = manager.apply_and(rel, dst_losers)
            if hit == FALSE:
                return rel
            rest = manager.apply_diff(rel, dst_losers)
            moved = manager.apply_and(manager.exist(hit, self._dst_levels), dst_rep)
            return manager.apply_or(rest, moved)

        self.points_to = rewrite_src(self.points_to)
        self.edges = rewrite_dst(rewrite_src(self.edges))
        self._load_rel = {
            k: rewrite_dst(rewrite_src(rel)) for k, rel in self._load_rel.items()
        }
        self._store_rel = {
            k: rewrite_dst(rewrite_src(rel)) for k, rel in self._store_rel.items()
        }
        self._offs_rel = {
            k: rewrite_dst(rewrite_src(rel)) for k, rel in self._offs_rel.items()
        }
        self._merged_vars |= losers
        return True

    def _normalize_rows(self, rel: int) -> int:
        """Rename any merged-away variable in an edge relation to its rep.

        Freshly derived edges name pointees by their original location id
        (points-to set contents are never rewritten), so an edge endpoint
        may be a variable that HCD unified away.
        """
        if not self._merged_vars:
            return rel
        manager = self.manager
        by_rep: Dict[int, List[int]] = {}
        for var in self._merged_vars:
            by_rep.setdefault(self.uf.find(var), []).append(var)
        for rep, losers in by_rep.items():
            src_losers = self.src.set_of(losers)
            hit = manager.apply_and(rel, src_losers)
            if hit != FALSE:
                rel = manager.apply_or(
                    manager.apply_diff(rel, src_losers),
                    manager.apply_and(
                        manager.exist(hit, self._src_levels), self.src.encode(rep)
                    ),
                )
            dst_losers = self.dst.set_of(losers)
            hit = manager.apply_and(rel, dst_losers)
            if hit != FALSE:
                rel = manager.apply_or(
                    manager.apply_diff(rel, dst_losers),
                    manager.apply_and(
                        manager.exist(hit, self._dst_levels), self.dst.encode(rep)
                    ),
                )
        return rel

    # ------------------------------------------------------------------
    # Export and accounting
    # ------------------------------------------------------------------

    def _pts_values(self, var: int) -> List[int]:
        manager = self.manager
        row = manager.apply_and(self.points_to, self.src.encode(self.uf.find(var)))
        if row == FALSE:
            return []
        projected = manager.exist(row, self._src_levels)
        return list(self.obj.values(projected))

    def _export_solution(self) -> PointsToSolution:
        mapping = {
            var: self._pts_values(var) for var in range(self.system.num_vars)
        }
        return PointsToSolution(
            mapping, self.system.num_vars, self.system.names,
            num_locs=self.system.num_vars,
        )

    def _account_memory(self) -> None:
        # BLQ's footprint is the BDD pool: every node the manager ever made.
        self.stats.pts_memory_bytes = self.manager.node_count * self.BYTES_PER_NODE
        self.stats.graph_memory_bytes = 0
