"""Solver registry: names to factories.

The nine algorithm configurations of paper Table 3 (plus the naive
Figure-1 baseline) are addressed by name::

    solve(system, "lcd+hcd")          # the paper's headline algorithm
    solve(system, "ht", pts="bdd")    # HT with BDD points-to sets

A ``+hcd`` suffix composes Hybrid Cycle Detection with the base
algorithm, exactly as in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintSystem
from repro.solvers.base import BaseSolver
from repro.solvers.blq import BLQSolver
from repro.solvers.hcd import HCDSolver
from repro.solvers.ht import HTSolver
from repro.solvers.lcd import LCDSolver
from repro.solvers.naive import NaiveSolver
from repro.solvers.pkh import PKHSolver
from repro.solvers.pkh03 import PKH03Solver
from repro.solvers.steensgaard import SteensgaardSolver
from repro.solvers.wave import WaveSolver
from repro.solvers.wave_par import WaveParallelSolver

_BASE_SOLVERS: Dict[str, Type[BaseSolver]] = {
    "naive": NaiveSolver,
    "ht": HTSolver,
    "pkh": PKHSolver,
    # Extension: Pearce et al.'s original 2003 algorithm (per-edge cycle
    # detection via dynamic topological ordering) — the "too aggressive"
    # design point the paper's Discussion refers to.
    "pkh03": PKH03Solver,
    "blq": BLQSolver,
    "lcd": LCDSolver,
    "hcd": HCDSolver,
    # Extension: Wave Propagation (Pereira & Berlin, CGO 2009), the
    # follow-on work built on this paper's foundations.
    "wave": WaveSolver,
    # Extension: level-scheduled wave propagation with a multiprocessing
    # fan-out per topological level (bit-identical to "wave" at any
    # worker count; see solvers/wave_par.py).
    "wave-par": WaveParallelSolver,
}

#: Analyses with *different precision* than inclusion-based analysis:
#: valid solver names, but never part of the equivalence-checked set.
_PRECISION_BASELINES: Dict[str, Type[BaseSolver]] = {
    "steensgaard": SteensgaardSolver,
}

#: The algorithm configurations evaluated in the paper (Table 3 order).
PAPER_ALGORITHMS: List[str] = [
    "ht",
    "pkh",
    "blq",
    "lcd",
    "hcd",
    "ht+hcd",
    "pkh+hcd",
    "blq+hcd",
    "lcd+hcd",
]


def available_solvers() -> List[str]:
    """Inclusion-based solver names (bases plus ``+hcd`` combinations).

    Every name returned here computes the *identical* solution; the
    precision baselines (``steensgaard``) are accepted by
    :func:`make_solver` but deliberately excluded.
    """
    names = sorted(_BASE_SOLVERS)
    names.extend(
        f"{base}+hcd" for base in sorted(_BASE_SOLVERS) if base != "hcd"
    )
    return names


def all_solvers() -> List[str]:
    """Every accepted name, including the precision baselines."""
    return available_solvers() + sorted(_PRECISION_BASELINES)


def make_solver(
    system: ConstraintSystem,
    algorithm: str = "lcd+hcd",
    pts: str = "bitmap",
    worklist: str = "divided-lrf",
    workers: int = 1,
    sanitize: bool = False,
    opt: str = "none",
    k_cs: int = 0,
) -> BaseSolver:
    """Instantiate a solver by name (without running it).

    ``workers`` sizes the worker pool of solvers that support one
    (currently ``wave-par``); other solvers ignore it.  ``sanitize``
    installs the :mod:`repro.verify.sanitizer` invariant checks at the
    solver's collapse/propagate boundaries.  ``opt`` selects the offline
    optimization stage (:data:`repro.preprocess.hvn.OPT_STAGES`) run on
    the constraints before solving; solutions are transparently expanded
    back to the original variable space.  ``k_cs`` selects k-CFA context
    sensitivity (:mod:`repro.contexts`): the system is cloned per
    bounded call string before the ``opt`` stage, and the solution is
    projected back onto the base variables — composable with every
    algorithm, points-to family and optimization stage.
    """
    name = algorithm.lower().strip()
    hcd = False
    if name.endswith("+hcd"):
        hcd = True
        name = name[: -len("+hcd")]
    solver_cls = _BASE_SOLVERS.get(name)
    if solver_cls is None and not hcd:
        solver_cls = _PRECISION_BASELINES.get(name)
    if solver_cls is None:
        known = ", ".join(all_solvers())
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}")
    if solver_cls is HCDSolver and hcd:
        hcd = False  # "hcd+hcd" is just hcd
    extra = {}
    if issubclass(solver_cls, WaveParallelSolver):
        extra["workers"] = workers
    return solver_cls(
        system, pts=pts, hcd=hcd, worklist=worklist, sanitize=sanitize,
        opt=opt, k_cs=k_cs, **extra
    )


def solve(
    system: ConstraintSystem,
    algorithm: str = "lcd+hcd",
    pts: str = "bitmap",
    worklist: str = "divided-lrf",
    workers: int = 1,
    sanitize: bool = False,
    opt: str = "none",
    k_cs: int = 0,
) -> PointsToSolution:
    """One-call API: build the named solver and return its solution."""
    return make_solver(
        system, algorithm, pts=pts, worklist=worklist, workers=workers,
        sanitize=sanitize, opt=opt, k_cs=k_cs,
    ).solve()
