"""Steensgaard's unification-based points-to analysis (POPL 1996).

The paper's Related Work positions inclusion-based analysis against
Steensgaard's near-linear-time alternative: "While Steensgaard's analysis
has much greater imprecision than inclusion-based analysis ...
inclusion-based pointer analysis is a better choice ... if it can be made
to run in reasonable time" — which is the paper's whole project.  This
module implements that foil so the precision gap can be *measured*
(see ``benchmarks/bench_17_precision_vs_steensgaard.py``).

The algorithm processes each constraint once, unifying equivalence
classes (bidirectional flow) instead of adding inclusion edges:

- ``a = &b``   unify ``pointee(a)`` with ``class(b)``
- ``a = b``    unify ``pointee(a)`` with ``pointee(b)``
- ``a = *b``   unify ``pointee(a)`` with ``pointee(pointee(b))``
- ``*a = b``   unify ``pointee(pointee(a))`` with ``pointee(b)``

Indirect calls (offset constraints) unify argument/return pointees with
the corresponding slots of every function that reaches the pointer's
pointee class; pending call uses are replayed when classes merge, so the
result is a fixpoint despite single-pass processing.

The exported :class:`PointsToSolution` names only *locations* (address-
taken variables), so it is directly comparable to — and provably a
superset of — the inclusion-based solution, which the tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintKind, ConstraintSystem
from repro.datastructs.union_find import UnionFind
from repro.solvers.base import BaseSolver


class SteensgaardSolver(BaseSolver):
    """Near-linear unification-based analysis (not inclusion-based).

    Registered separately from the Andersen-style solvers: its solution
    is deliberately *less precise*, so it must never appear in the
    equivalence tests — only in precision comparisons.
    """

    name = "steensgaard"

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",  # accepted for interface parity; unused
        hcd: bool = False,  # HCD is meaningless under unification
        worklist: str = "divided-lrf",  # unused
        sanitize: bool = False,
        opt: str = "none",  # accepted for interface parity; always "none"
        k_cs: int = 0,
    ) -> None:
        # HVN/HU merges are proven against the *inclusion-based* least
        # model; unification-based analysis computes a different relation,
        # so the substitution contract does not apply — run unoptimized.
        # Context expansion is plain cloning, which unification handles.
        super().__init__(system, pts=pts, hcd=False, sanitize=sanitize, k_cs=k_cs)
        system = self.system  # the (possibly) context-expanded system
        n = system.num_vars
        self.uf = UnionFind(n)
        #: pointee[c] — the class this class's members point to (or None).
        self._pointee: List[Optional[int]] = [None] * n
        #: functions known to live in a class (for indirect calls).
        self._funcs: List[Set[int]] = [set() for _ in range(n)]
        #: pending indirect-call uses per class: (kind, other, offset).
        self._call_uses: List[List[Tuple[str, int, int]]] = [[] for _ in range(n)]
        for node in system.functions:
            self._funcs[node].add(node)
        # Field-sensitive object blocks are addressed via offsets exactly
        # like function blocks.
        for node in system.object_blocks:
            self._funcs[node].add(node)

    # ------------------------------------------------------------------
    # Class plumbing
    # ------------------------------------------------------------------

    def _pointee_of(self, node: int) -> int:
        """Pointee class of ``node``'s class, created on demand."""
        cls = self.uf.find(node)
        pointee = self._pointee[cls]
        if pointee is None:
            fresh = self.uf.make_set()
            self._pointee.append(None)
            self._funcs.append(set())
            self._call_uses.append([])
            self._pointee[cls] = fresh
            return fresh
        return self.uf.find(pointee)

    def _unify(self, a: int, b: int) -> int:
        """Recursively unify two classes (Steensgaard's ``join``)."""
        a = self.uf.find(a)
        b = self.uf.find(b)
        if a == b:
            return a
        pointee_a = self._pointee[a]
        pointee_b = self._pointee[b]
        winner = self.uf.union(a, b)
        loser = b if winner == a else a
        self.stats.nodes_collapsed += 1
        # Cross products that have not met yet: the winner's pending call
        # uses against the loser's functions, and vice versa.
        replay = [
            (use, fn)
            for use in self._call_uses[winner]
            for fn in self._funcs[loser] - self._funcs[winner]
        ] + [
            (use, fn)
            for use in self._call_uses[loser]
            for fn in self._funcs[winner] - self._funcs[loser]
        ]
        # Merge class payloads onto the winner.
        if self._pointee[winner] is None:
            self._pointee[winner] = self._pointee[loser]
        self._funcs[winner] |= self._funcs[loser]
        self._call_uses[winner] = self._call_uses[winner] + self._call_uses[loser]
        self._funcs[loser] = set()
        self._call_uses[loser] = []
        # Unify the pointees (the recursive join).
        if pointee_a is not None and pointee_b is not None:
            self._unify(pointee_a, pointee_b)
        for (kind, other, offset), fn in replay:
            self._apply_call(kind, other, offset, fn)
        return self.uf.find(winner)

    # ------------------------------------------------------------------
    # Constraint processing
    # ------------------------------------------------------------------

    def _run(self) -> PointsToSolution:
        system = self.system
        for constraint in system.constraints:
            kind = constraint.kind
            if kind is ConstraintKind.BASE:
                self._unify(self._pointee_of(constraint.dst), constraint.src)
            elif kind is ConstraintKind.COPY:
                self._unify(
                    self._pointee_of(constraint.dst),
                    self._pointee_of(constraint.src),
                )
            elif kind is ConstraintKind.LOAD:
                if constraint.offset:
                    self._register_call_use(
                        "load", constraint.dst, constraint.src, constraint.offset
                    )
                else:
                    target = self._pointee_of(constraint.src)
                    self._unify(
                        self._pointee_of(constraint.dst), self._pointee_of(target)
                    )
            elif kind is ConstraintKind.STORE:
                if constraint.offset:
                    self._register_call_use(
                        "store", constraint.src, constraint.dst, constraint.offset
                    )
                else:
                    target = self._pointee_of(constraint.dst)
                    self._unify(
                        self._pointee_of(target), self._pointee_of(constraint.src)
                    )
            else:  # OFFS: dst = src + k
                self._register_call_use(
                    "offs", constraint.dst, constraint.src, constraint.offset
                )
        return self._export_solution()

    def _register_call_use(self, kind: str, other: int, ptr: int, offset: int) -> None:
        """Record an indirect-call slot access through ``ptr``."""
        pointee = self._pointee_of(ptr)
        self._call_uses[pointee].append((kind, other, offset))
        for fn in list(self._funcs[pointee]):
            self._apply_call(kind, other, offset, fn)

    def _apply_call(self, kind: str, other: int, offset: int, fn: int) -> None:
        if self.system.max_offset[fn] < offset:
            return
        slot = fn + offset
        if kind == "load":
            # other = *(ptr + offset): other's pointee joins the slot's.
            self._unify(self._pointee_of(other), self._pointee_of(slot))
        elif kind == "store":
            # *(ptr + offset) = other.
            self._unify(self._pointee_of(slot), self._pointee_of(other))
        else:  # offs: other = ptr + offset  =>  other points to the slot
            self._unify(self._pointee_of(other), slot)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _locations(self) -> List[int]:
        locations = set(self.system.address_taken())
        locations.update(self.system.functions)
        # Block slots can enter points-to sets through offset copies.
        for info in self.system.functions.values():
            locations.add(info.return_node)
            locations.update(info.param_nodes)
        for block in self.system.object_blocks.values():
            locations.update(block.field_nodes)
        return sorted(locations)

    def _export_solution(self) -> PointsToSolution:
        by_class: Dict[int, List[int]] = {}
        for loc in self._locations():
            by_class.setdefault(self.uf.find(loc), []).append(loc)
        mapping = {}
        for var in range(self.system.num_vars):
            cls = self.uf.find(var)
            pointee = self._pointee[cls]
            if pointee is None:
                continue
            locs = by_class.get(self.uf.find(pointee))
            if locs:
                mapping[var] = locs
        return PointsToSolution(
            mapping, self.system.num_vars, self.system.names,
            num_locs=self.system.num_vars,
        )

    def _account_memory(self) -> None:
        # One pointee slot and one parent entry per class.
        self.stats.pts_memory_bytes = 16 * len(self.uf)
        self.stats.graph_memory_bytes = 0
