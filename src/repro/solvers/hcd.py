"""Hybrid Cycle Detection as a standalone solver (paper Figure 5).

Structurally the Figure 1 baseline with one addition: when a node ``n`` is
processed, the pair list ``L`` produced by the offline analysis is
consulted, and any ``(n, a)`` tuple lets the solver preemptively collapse
``a`` with everything in ``pts(n)`` — cycle detection with **zero graph
traversal** (``nodes_searched`` stays 0).

HCD alone is incomplete: it only finds cycles inferable from the offline
graph (the paper measures 46-74% of the nodes PKH collapses), which is why
its real value is as an enhancer for the other algorithms (``ht+hcd``,
``pkh+hcd``, ``blq+hcd``, ``lcd+hcd``).
"""

from __future__ import annotations

from repro.constraints.model import ConstraintSystem
from repro.solvers.naive import NaiveSolver


class HCDSolver(NaiveSolver):
    """Figure 5: the baseline worklist solver driven by the pair list."""

    name = "hcd"

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",
        hcd: bool = True,
        worklist: str = "divided-lrf",
        difference_propagation: bool = False,
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        # HCD *is* the algorithm here; it cannot be switched off.
        super().__init__(
            system,
            pts=pts,
            hcd=True,
            worklist=worklist,
            difference_propagation=difference_propagation,
            sanitize=sanitize,
            opt=opt,
            k_cs=k_cs,
        )

    @property
    def full_name(self) -> str:
        return self.name
