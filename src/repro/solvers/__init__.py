"""The constraint solvers.

Five main algorithms (paper Section 5.1), each also composable with Hybrid
Cycle Detection:

=========  ===============================================================
name       algorithm
=========  ===============================================================
naive      Figure 1: dynamic transitive closure, no cycle detection
ht         Heintze & Tardieu: pre-transitive graph, reachability queries
pkh        Pearce, Kelly & Hankin: periodic whole-graph cycle sweeps
blq        Berndl et al.: BDD-relational solver, incrementalized
lcd        Lazy Cycle Detection (this paper, Figure 2)
hcd        Hybrid Cycle Detection standalone (this paper, Figure 5)
=========  ===============================================================

Use :func:`~repro.solvers.registry.make_solver` / ``solve`` with names like
``"lcd+hcd"`` for the combined configurations of Table 3.
"""

from repro.solvers.base import BaseSolver, GraphSolver, SolverStats
from repro.solvers.registry import available_solvers, make_solver, solve

__all__ = [
    "BaseSolver",
    "GraphSolver",
    "SolverStats",
    "available_solvers",
    "make_solver",
    "solve",
]
