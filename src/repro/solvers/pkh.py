"""The Pearce, Kelly & Hankin solver (PASTE 2004).

Pearce et al.'s second (and faster) algorithm abandons per-edge cycle
detection: "rather than detect cycles at every edge insertion, the entire
constraint graph is periodically swept to detect and collapse any cycles
that have formed since the last sweep".

The solver therefore runs in *rounds*.  Each round:

1. sweeps the whole graph with one SCC pass and collapses every cycle
   (this is why PKH is the only algorithm guaranteed to find **all**
   cycles — and why its ``nodes_searched`` grows with graph size rather
   than with cycle count);
2. processes the pending worklist in topological order of the now-acyclic
   graph (sources first, so points-to information flows forward in one
   pass), queueing newly dirtied nodes for the next round.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.solution import PointsToSolution
from repro.graph.scc import tarjan_scc
from repro.solvers.base import GraphSolver


class PKHSolver(GraphSolver):
    """Periodic whole-graph sweeps + topological-order processing."""

    name = "pkh"

    def _run(self) -> PointsToSolution:
        graph = self.graph
        pending: Set[int] = {
            node for node in graph.rep_nodes() if len(graph.pts_of(node))
        }

        def push(node: int) -> None:
            pending.add(graph.find(node))

        while pending:
            self.stats.iterations += 1
            batch = {graph.find(node) for node in pending}
            pending = set()
            # Collapses during the sweep may leave cross-resolution jobs
            # on a representative; push routes them into this round.
            topo_order = self._sweep_and_collapse(push)
            batch = {graph.find(node) for node in batch} | pending
            pending = set()

            for node in topo_order:
                node = graph.find(node)
                if node not in batch:
                    continue
                batch.discard(node)
                if self.hcd_enabled:
                    node = self.hcd_check(node, push)
                self.resolve_complex(node, push)
                self.propagate(node, push)

        return self._export_solution()

    def _sweep_and_collapse(self, push) -> List[int]:
        """One full-graph SCC pass; returns a sources-first node order."""
        graph = self.graph
        reps = list(graph.rep_nodes())
        self.stats.nodes_searched += len(reps)

        def successors(node: int):
            return list(graph.successors(node))

        components = tarjan_scc(reps, successors)
        order: List[int] = []
        for component in reversed(components):  # sinks-last == sources-first
            if len(component) >= 2:
                order.append(self.collapse_nodes(component, push))
            else:
                order.append(component[0])
        return order
