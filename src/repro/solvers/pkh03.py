"""The original Pearce, Kelly & Hankin solver (SCAM 2003).

The paper's Related Work describes it: "In order to avoid cycle detection
at every edge insertion, the algorithm dynamically maintains a topological
ordering of the constraint graph.  Only a newly-inserted edge that
violates the current ordering could possibly create a cycle, so only in
this case are cycle detection and topological re-ordering performed.
This algorithm proves to still have too much overhead" — the paper's
Discussion places it (with Faehndrich et al.) "an order of magnitude
slower than any of the algorithms evaluated in this paper", the
cautionary tale about being *too* aggressive.

We implement it as an extension solver (name ``pkh03``) so that
aggressiveness trade-off can be measured: an initial SCC pass seeds a
topological order; every subsequent edge insertion runs through the
Pearce-Kelly dynamic-order maintenance, and an order violation that
witnesses a cycle collapses it on the spot.  Collapsing can itself leave
stale order relations on the representative's edges, which are repaired
by re-inserting the violated edges — possibly discovering further cycles.
"""

from __future__ import annotations

from typing import List

from repro.analysis.solution import PointsToSolution
from repro.constraints.model import ConstraintSystem
from repro.datastructs.sparse_bitmap import SparseBitmap
from repro.datastructs.worklist import make_worklist
from repro.graph.scc import tarjan_scc
from repro.graph.topo_order import DynamicTopologicalOrder
from repro.solvers.base import GraphSolver


class PKH03Solver(GraphSolver):
    """Per-edge cycle detection via dynamic topological ordering."""

    name = "pkh03"

    def __init__(
        self,
        system: ConstraintSystem,
        pts: str = "bitmap",
        hcd: bool = False,
        worklist: str = "divided-lrf",
        difference_propagation: bool = False,
        sanitize: bool = False,
        opt: str = "none",
        k_cs: int = 0,
    ) -> None:
        super().__init__(
            system,
            pts=pts,
            hcd=hcd,
            worklist=worklist,
            difference_propagation=difference_propagation,
            sanitize=sanitize,
            opt=opt,
            k_cs=k_cs,
        )
        system = self.system  # the (possibly) offline-reduced system
        self.topo = DynamicTopologicalOrder(system.num_vars)
        #: preds mirror of the successor sets, for the backward searches.
        self.preds: List[SparseBitmap] = [
            SparseBitmap() for _ in range(system.num_vars)
        ]

    # ------------------------------------------------------------------
    # Initial order: collapse pre-existing cycles, then number the DAG
    # ------------------------------------------------------------------

    def _initialize_order(self, push) -> None:
        graph = self.graph
        reps = list(graph.rep_nodes())
        self.stats.nodes_searched += len(reps)
        components = tarjan_scc(reps, lambda n: list(graph.successors(n)))
        total = len(components)
        # Tarjan emits sinks (downstream components) first; downstream
        # nodes need the *larger* order values.
        for index, component in enumerate(components):
            if len(component) >= 2:
                rep = self.collapse_nodes(component, push)
            else:
                rep = component[0]
            self.topo.set_order(rep, total - index)
        for node in graph.rep_nodes():
            for raw in graph.succ[node]:
                self.preds[graph.find(raw)].add(node)

    # ------------------------------------------------------------------
    # Edge insertion through the dynamic order
    # ------------------------------------------------------------------

    def _apply_complex(self, loads, stores, offs, locs, push) -> None:
        """Route every new edge through the dynamic topological order."""
        graph = self.graph
        find = graph.find
        max_offset = graph.system.max_offset
        # Snapshot: collapses triggered by edge insertion can merge the
        # very constraint sets being iterated.
        loads = list(loads)
        stores = list(stores)
        offs = list(offs)
        for dst, offset in loads:
            for loc in locs:
                if offset and max_offset[loc] < offset:
                    continue
                source = find(loc + offset) if offset else find(loc)
                self._insert_edge(source, find(dst), push)
        for src, offset in stores:
            for loc in locs:
                if offset and max_offset[loc] < offset:
                    continue
                target = find(loc + offset) if offset else find(loc)
                self._insert_edge(find(src), target, push)
        for dst, offset in offs:
            dst_rep = find(dst)
            dst_pts = graph.pts[dst_rep]
            changed = False
            for loc in locs:
                if max_offset[loc] < offset:
                    continue
                self.stats.propagations += 1
                if dst_pts.add(loc + offset):
                    changed = True
            if changed:
                push(dst_rep)

    def _apply_complex_fused(self, loads, stores, offs, locs_bits, push) -> None:
        """Every edge must pass through the dynamic topological order, so
        the fused batch form decodes the pointee bignum and reuses the
        order-aware `_apply_complex` (the fused fresh-diff and propagate
        paths in the base class still apply)."""
        from repro.datastructs.intset import iter_bits

        self._apply_complex(loads, stores, offs, list(iter_bits(locs_bits)), push)

    def _insert_edge(self, src: int, dst: int, push) -> None:
        graph = self.graph
        if src == dst or not graph.succ[src].add(dst):
            return
        self.stats.edges_added += 1
        if self.difference_propagation:
            graph.fresh_edges[src].append(dst)
        self.preds[dst].add(src)
        push(src)

        result = self.topo.add_edge(
            src, dst, successors=self._successors, predecessors=self._predecessors
        )
        if result is not None:
            forward, backward = result
            members = (forward & backward) | {src, dst}
            rep = self.collapse_nodes(sorted(members), push)
            self._merge_preds(members, rep)
            push(rep)
            self._repair_order(rep, push)

    def _merge_preds(self, members, rep: int) -> None:
        graph = self.graph
        merged = SparseBitmap()
        for member in members:
            merged.ior(self.preds[member])
            if graph.find(member) != rep:
                self.preds[member] = SparseBitmap()
        self.preds[rep] = merged

    def _repair_order(self, rep: int, push) -> None:
        """Re-establish order consistency around a collapsed node.

        The representative keeps its own order value, which may violate
        relations its inherited edges used to satisfy; re-inserting the
        violated edges restores the invariant and may expose (and
        collapse) further cycles.
        """
        graph = self.graph
        work = [rep]
        while work:
            node = graph.find(work.pop())
            changed = None
            for raw in list(graph.succ[node]):
                succ = graph.find(raw)
                if succ != node and not self.topo.consistent(node, succ):
                    result = self.topo.add_edge(
                        node,
                        succ,
                        successors=self._successors,
                        predecessors=self._predecessors,
                    )
                    if result is not None:
                        forward, backward = result
                        members = (forward & backward) | {node, succ}
                        changed = self.collapse_nodes(sorted(members), push)
                        self._merge_preds(members, changed)
                        push(changed)
                        break
            for raw in list(self.preds[node]):
                pred = graph.find(raw)
                if pred != node and not self.topo.consistent(pred, node):
                    result = self.topo.add_edge(
                        pred,
                        node,
                        successors=self._successors,
                        predecessors=self._predecessors,
                    )
                    if result is not None:
                        forward, backward = result
                        members = (forward & backward) | {pred, node}
                        changed = self.collapse_nodes(sorted(members), push)
                        self._merge_preds(members, changed)
                        push(changed)
                        break
            if changed is not None:
                work.append(changed)

    def _successors(self, node: int):
        graph = self.graph
        node = graph.find(node)
        return [graph.find(raw) for raw in graph.succ[node]]

    def _predecessors(self, node: int):
        graph = self.graph
        node = graph.find(node)
        return [
            pred
            for raw in self.preds[node]
            if (pred := graph.find(raw)) != node
        ]

    # ------------------------------------------------------------------
    # Driver: the Figure-1 loop with eager per-edge detection
    # ------------------------------------------------------------------

    def _run(self) -> PointsToSolution:
        graph = self.graph
        worklist = make_worklist(self.worklist_strategy)
        searched_before = self.topo.visited
        self._initialize_order(worklist.push)

        for node in graph.rep_nodes():
            if len(graph.pts_of(node)):
                worklist.push(node)

        while worklist:
            node = graph.find(worklist.pop())
            self.stats.iterations += 1
            if self.hcd_enabled:
                node = self.hcd_check(node, worklist.push)
            self.resolve_complex(node, worklist.push)
            self.propagate(node, worklist.push)

        self.stats.nodes_searched += self.topo.visited - searched_before
        return self._export_solution()
