"""The baseline dynamic transitive-closure solver (paper Figure 1).

A plain worklist algorithm with **no cycle detection**: pull a node, add
the edges its complex constraints demand, propagate its points-to set to
its successors, repeat.  The paper notes that without cycle detection the
larger benchmarks exhaust memory; the algorithm is nevertheless the
semantic reference — every other solver must agree with it — and the
correctness oracle for this repository's integration tests.
"""

from __future__ import annotations

from repro.analysis.solution import PointsToSolution
from repro.datastructs.worklist import make_worklist
from repro.solvers.base import GraphSolver


class NaiveSolver(GraphSolver):
    """Figure 1, verbatim (optionally HCD-augmented, which is Figure 5)."""

    name = "naive"

    def _run(self) -> PointsToSolution:
        graph = self.graph
        worklist = make_worklist(self.worklist_strategy)
        for node in graph.rep_nodes():
            if len(graph.pts_of(node)):
                worklist.push(node)

        while worklist:
            node = graph.find(worklist.pop())
            self.stats.iterations += 1
            if self.hcd_enabled:
                node = self.hcd_check(node, worklist.push)
            self.resolve_complex(node, worklist.push)
            self.propagate(node, worklist.push)

        return self._export_solution()
